"""Priority Flow Control (lossless fabric) and CBD deadlock detection.

RoCEv2-class fabrics avoid drops with per-port PAUSE/RESUME (IEEE
802.1Qbb): when a queue crosses its XOFF threshold the node asks every
upstream neighbor to stop transmitting toward it, and releases them once
the queue drains below XON. The price is the PFC failure-mode family —
victim-flow congestion spreading (a paused port backs traffic up into
queues that were never congested), pause storms, and cyclic buffer
dependency (CBD) deadlocks, where a cycle of ports each waits on the
next and nothing ever drains.

This module is the control plane on top of the per-port machinery in
:mod:`repro.sim.queues`:

- :class:`PFCController` — one per switch; refcounts the node's XOFF'd
  egress ports and broadcasts PAUSE to all upstream neighbors on the
  0→1 transition, RESUME on 1→0. Frames travel through
  :meth:`~repro.sim.link.Link.transmit_ctrl` (bypassing the egress
  port: PFC is highest-priority and immune to its own pauses) and are
  intercepted by ``Switch.receive``/``Host.receive`` before forwarding.
  This is an output-queue simplification of per-ingress-priority
  accounting: one pause class per port, which makes congestion
  spreading *more* aggressive than real per-priority PFC — the
  conservative choice for a robustness study.
- :func:`enable_pfc` — arms a whole :class:`~repro.sim.network.Network`:
  every switch gets a controller, every switch port gets thresholds,
  and host NICs honor pause without originating it.
- :class:`DeadlockWatchdog` — periodic runtime scan for CBD cycles: a
  wait-for edge A→B exists when A's egress port toward B is paused, and
  a cycle whose ports have all been paused continuously for at least
  ``window_ps`` is reported as a first-class invariant violation
  (``cbd_deadlock``) instead of a silent hang.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.sim.packet import make_pause, make_resume
from repro.sim.units import MS

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.network import Network
    from repro.sim.queues import Port


@dataclass(frozen=True)
class PFCConfig:
    """Fabric-wide PFC thresholds.

    ``xoff_frac``/``xon_frac`` are fractions of each port's queue
    capacity; the gap between them is the hysteresis that stops
    pause/resume chatter. ``pause_hold_ps`` is the quantum carried in
    PAUSE frames — ``None`` pauses until the explicit RESUME (the
    controller always sends one, but a finite hold bounds the damage if
    that RESUME is lost on a failed link).
    """

    xoff_frac: float = 0.6
    xon_frac: float = 0.3
    pause_hold_ps: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.xon_frac <= self.xoff_frac <= 1.0:
            raise ValueError(
                f"invalid PFC thresholds: xon={self.xon_frac} "
                f"xoff={self.xoff_frac} (need 0 < xon <= xoff <= 1)"
            )
        if self.pause_hold_ps is not None and self.pause_hold_ps <= 0:
            raise ValueError("pause hold must be positive (or None)")


class PFCController:
    """Per-switch pause origination: XOFF refcount over the node's ports.

    The single-priority simplification means the node pauses *all* of
    its upstream neighbors while any of its egress queues sits above
    XOFF, and resumes them all once every queue is back below XON.
    """

    __slots__ = ("sim", "node", "hold_ps", "pause_frames_tx",
                 "resume_frames_tx", "xoff_events", "_xoff_ports",
                 "_events")

    def __init__(self, sim: "Simulator", node,
                 hold_ps: Optional[int] = None):
        self.sim = sim
        self.node = node
        self.hold_ps = 0 if hold_ps is None else hold_ps
        self.pause_frames_tx = 0
        self.resume_frames_tx = 0
        self.xoff_events = 0   # XOFF threshold crossings (all ports)
        self._xoff_ports = 0   # ports currently above XOFF
        obs = sim.obs
        self._events = obs.events if obs is not None else None
        if obs is not None:
            obs.metrics.defer(self._register_metrics)

    def _register_metrics(self, registry) -> None:
        from repro.obs.metrics import metric_key

        base = f"pfc.{metric_key(self.node.name)}"
        registry.gauge(f"{base}.pause_frames_tx",
                       lambda: self.pause_frames_tx)
        registry.gauge(f"{base}.resume_frames_tx",
                       lambda: self.resume_frames_tx)
        registry.gauge(f"{base}.xoff_events", lambda: self.xoff_events)

    def on_xoff(self, port: "Port") -> None:
        """An egress queue crossed XOFF; pause upstream on 0→1."""
        self.xoff_events += 1
        self._xoff_ports += 1
        ev = self._events
        if ev is not None and ev.wants("pfc"):
            ev.emit("pfc", "xoff", t=self.sim.now, node=self.node.name,
                    port=port.name, queued_bytes=port.bytes_queued)
        if self._xoff_ports == 1:
            self._broadcast(pause=True)

    def on_xon(self, port: "Port") -> None:
        """An XOFF'd queue drained below XON; resume upstream on 1→0."""
        self._xoff_ports -= 1
        ev = self._events
        if ev is not None and ev.wants("pfc"):
            ev.emit("pfc", "xon", t=self.sim.now, node=self.node.name,
                    port=port.name, queued_bytes=port.bytes_queued)
        if self._xoff_ports == 0:
            self._broadcast(pause=False)

    def _broadcast(self, pause: bool) -> None:
        """Send PAUSE/RESUME to every neighbor over the reverse links.

        The frame rides this node's egress link toward the neighbor
        (``transmit_ctrl``: past the egress queue, so even a paused port
        still carries control traffic) and names the parallel-cable
        index, so the receiver pauses exactly its port feeding us.
        """
        node_id = self.node.node_id
        for (neighbor_id, idx), port in self.node.ports.items():
            if pause:
                frame = make_pause(node_id, neighbor_id, idx, self.hold_ps)
                self.pause_frames_tx += 1
            else:
                frame = make_resume(node_id, neighbor_id, idx)
                self.resume_frames_tx += 1
            port.link.transmit_ctrl(frame)


def enable_pfc(net: "Network",
               config: Optional[PFCConfig] = None) -> Dict[int, PFCController]:
    """Turn the network's fabric lossless.

    Every switch gets a :class:`PFCController` (stored on
    ``switch.pfc``) and every switch egress port gets the XOFF/XON
    thresholds; host NIC uplinks honor pause without originating it
    (hosts have no ingress queue to protect — endpoints consume
    instantly). Returns ``{node_id: controller}``.
    """
    config = config or PFCConfig()
    controllers: Dict[int, PFCController] = {}
    for sw in net.switches:
        ctrl = PFCController(sw.sim, sw, hold_ps=config.pause_hold_ps)
        sw.pfc = ctrl
        controllers[sw.node_id] = ctrl
        for port in sw.ports.values():
            port.configure_pfc(config.xoff_frac, config.xon_frac, ctrl)
    for host in net.hosts:
        for port in host.ports.values():
            port.configure_pfc(config.xoff_frac, config.xon_frac, None)
    return controllers


def pause_stats(net: "Network") -> Dict[str, int]:
    """Fabric-wide PFC counters (zeros when PFC never engaged)."""
    pause_tx = resume_tx = xoff = 0
    for sw in net.switches:
        ctrl = getattr(sw, "pfc", None)
        if ctrl is not None:
            pause_tx += ctrl.pause_frames_tx
            resume_tx += ctrl.resume_frames_tx
            xoff += ctrl.xoff_events
    pause_rx = paused_ps = 0
    for node in net.nodes:
        for port in node.ports.values():
            pause_rx += port.pause_frames_rx
            paused_ps += port.total_paused_ps()
    return {
        "pause_frames_tx": pause_tx,
        "resume_frames_tx": resume_tx,
        "pause_frames_rx": pause_rx,
        "xoff_events": xoff,
        "paused_time_ps": paused_ps,
    }


class DeadlockWatchdog:
    """Runtime CBD detector: periodic scan of the paused-port wait-for graph.

    Every ``interval_ps`` the watchdog builds the directed graph whose
    edge A→B means "switch A has an egress port toward switch B that has
    been paused continuously for at least ``window_ps``", and flags every
    strongly-connected component with more than one node as a CBD
    deadlock — the cycle has made no transmit progress for the whole
    window. Each distinct cycle is reported once per occurrence
    (re-reported if it clears and re-forms) as a dict shaped like the
    chaos invariant violations, and mirrored onto the obs ``pfc`` and
    ``invariant`` topics at detection time.

    ``until_ps`` bounds the scan schedule so a finite-horizon run still
    drains its event loop (the chaos invariant sweep checks exactly
    that); pass None only for open-ended interactive use.
    """

    def __init__(
        self,
        sim: "Simulator",
        net: "Network",
        window_ps: int = 10 * MS,
        interval_ps: int = 1 * MS,
        until_ps: Optional[int] = None,
    ):
        if window_ps <= 0 or interval_ps <= 0:
            raise ValueError("watchdog window and interval must be positive")
        self.sim = sim
        self.net = net
        self.window_ps = window_ps
        self.interval_ps = interval_ps
        self.until_ps = until_ps
        self.deadlocks: List[Dict[str, Any]] = []
        self.scans = 0
        self._flagged: set = set()  # frozensets of node names, active
        self._handle = sim.after(interval_ps, self._tick)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        self._handle = None
        now = self.sim.now
        self.scans += 1
        self._scan(now)
        nxt = now + self.interval_ps
        if self.until_ps is None or nxt <= self.until_ps:
            self._handle = self.sim.after(self.interval_ps, self._tick)

    def _stuck_edges(self, now: int) -> Dict[int, List[tuple]]:
        """node_id -> [(neighbor_id, port), ...] over window-old pauses."""
        cutoff = now - self.window_ps
        edges: Dict[int, List[tuple]] = {}
        for sw in self.net.switches:
            out = []
            for (neighbor_id, _idx), port in sw.ports.items():
                if port.paused and port.pause_started_ps <= cutoff:
                    out.append((neighbor_id, port))
            if out:
                edges[sw.node_id] = out
        return edges

    def _scan(self, now: int) -> None:
        edges = self._stuck_edges(now)
        switch_ids = {sw.node_id: sw for sw in self.net.switches}
        cycles = _sccs(
            {n: [t for t, _p in targets if t in switch_ids]
             for n, targets in edges.items()}
        )
        active = set()
        for component in cycles:
            names = frozenset(switch_ids[n].name for n in component)
            active.add(names)
            if names in self._flagged:
                continue
            self._flagged.add(names)
            member = set(component)
            ports = [p for n in component for t, p in edges[n]
                     if t in member]
            report = {
                "invariant": "cbd_deadlock",
                "cycle": sorted(names),
                "detected_ps": now,
                "window_ps": self.window_ps,
                "paused_for_ps": min(
                    now - p.pause_started_ps for p in ports),
                "queued_bytes": sum(p.bytes_queued for p in ports),
            }
            self.deadlocks.append(report)
            obs = self.sim.obs
            if obs is not None:
                obs.metrics.counter("pfc.cbd_deadlocks").inc()
                ev = obs.events
                if ev is not None:
                    for topic in ("pfc", "invariant"):
                        if ev.wants(topic):
                            ev.emit(topic, "cbd_deadlock", t=now,
                                    cycle=sorted(names),
                                    paused_for_ps=report["paused_for_ps"],
                                    queued_bytes=report["queued_bytes"])
        # A cycle that cleared can be re-reported if it re-forms.
        self._flagged &= active


def _sccs(graph: Dict[int, List[int]]) -> List[List[int]]:
    """Strongly-connected components with >1 node (iterative Tarjan).

    ``graph`` maps node -> successor list; nodes appearing only as
    successors are treated as edge-free. Self-loops cannot occur (no
    port targets its own node), so size-1 components are never cycles.
    """
    index: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: set = set()
    stack: List[int] = []
    counter = [0]
    result: List[List[int]] = []

    for root in sorted(graph):
        if root in index:
            continue
        work = [(root, iter(graph.get(root, ())))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    if index[succ] < lowlink[node]:
                        lowlink[node] = index[succ]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    result.append(sorted(component))
    return result
