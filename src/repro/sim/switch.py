"""Switches: destination-based forwarding with ECMP or packet spraying.

Each switch holds a precomputed next-hop table mapping destination host id
to the tuple of equal-cost egress ports (built by
:meth:`repro.sim.network.Network.build_routes`). Two selection modes:

- ``"ecmp"``: a deterministic hash of the packet's
  ``(src, dst, sport, dport)`` 5-tuple-equivalent, salted per switch.
  Flows (and UnoLB/PLB subflows, which vary ``sport``) stick to one path;
  hash collisions are faithfully reproduced.
- ``"rps"``: uniform random egress per packet (Random Packet Spraying
  [24], the paper's spraying baseline).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from dataclasses import dataclass

from repro.sim.node import FailureDomain
from repro.sim.packet import CNP, DATA, PAUSE, Packet, make_cnp

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.queues import Port

_M64 = (1 << 64) - 1


@dataclass(frozen=True)
class QCNConfig:
    """Annulus-style near-source notification (extension, paper footnote 4).

    When a data packet is forwarded onto a port whose queue already holds
    more than ``threshold_bytes``, the switch sends a CNP straight back to
    the packet's source — a congestion signal that arrives within an
    intra-DC RTT instead of an inter-DC one. Per-flow CNPs are spaced at
    least ``min_interval_ps`` apart.
    """

    threshold_bytes: int = 128 * 1024
    min_interval_ps: int = 10_000_000  # 10 us

    def __post_init__(self) -> None:
        if self.threshold_bytes <= 0:
            raise ValueError("QCN threshold must be positive")
        if self.min_interval_ps <= 0:
            raise ValueError("QCN interval must be positive")


def mix64(x: int) -> int:
    """splitmix64 finalizer: a fast, well-distributed integer hash."""
    x &= _M64
    x = (x ^ (x >> 33)) * 0xFF51AFD7ED558CCD & _M64
    x = (x ^ (x >> 33)) * 0xC4CEB9FE1A85EC53 & _M64
    return (x ^ (x >> 33)) & _M64


def flow_hash(src: int, dst: int, sport: int, dport: int, salt: int) -> int:
    """Deterministic ECMP hash over the flow identity plus a switch salt."""
    key = (src << 48) ^ (dst << 32) ^ (sport << 16) ^ dport
    return mix64(key ^ mix64(salt))


class Switch(FailureDomain):
    """Forwards by destination host id over equal-cost ports (ECMP or spraying)."""
    __slots__ = (
        "sim",
        "node_id",
        "name",
        "mode",
        "salt",
        "ports",
        "nexthops",
        "_rng",
        "rx_pkts",
        "sprayed_pkts",
        "multipath_pkts",
        "qcn",
        "_qcn_last_ps",
        "cnps_sent",
        "no_route_drops",
        "up",
        "attached_links",
        "down_node_drops",
        "_hash_cache",
        "pfc",
        "pfc_frames_rx",
    )

    MODES = ("ecmp", "rps")

    def __init__(
        self,
        sim: "Simulator",
        node_id: int,
        name: str,
        mode: str = "ecmp",
        salt: int = 0,
        rng: Optional[random.Random] = None,
    ):
        if mode not in self.MODES:
            raise ValueError(f"unknown selection mode {mode!r}")
        self.sim = sim
        self.node_id = node_id
        self.name = name
        self.mode = mode
        self.salt = salt
        self.ports: Dict[tuple, "Port"] = {}  # (neighbor id, idx) -> port
        self.nexthops: Dict[int, Tuple["Port", ...]] = {}
        self._rng = rng or random.Random(node_id)
        self.rx_pkts = 0
        self.sprayed_pkts = 0     # random-spray choices over >1 ports
        self.multipath_pkts = 0   # ECMP-hash choices over >1 ports
        self.qcn: Optional[QCNConfig] = None
        self._qcn_last_ps: Dict[int, int] = {}  # flow id -> last CNP time
        self.cnps_sent = 0
        self.no_route_drops = 0   # known dst, empty equal-cost set
        # ECMP memo: flow identity -> full 64-bit hash. The hash is pure
        # in its inputs, so caching preserves path selection exactly; the
        # full hash (not the modulo) is stored so the choice stays
        # correct when failures shrink the equal-cost set.
        self._hash_cache: Dict[Tuple[int, int, int, int], int] = {}
        # PFC controller (repro.sim.pfc.enable_pfc); None = lossy fabric.
        self.pfc = None
        self.pfc_frames_rx = 0
        self._init_failure_domain()
        obs = sim.obs
        if obs is not None:
            obs.metrics.defer(self._register_metrics)

    def _register_metrics(self, registry) -> None:
        from repro.obs.metrics import metric_key

        base = f"switch.{metric_key(self.name)}"
        registry.gauge(f"{base}.rx_pkts", lambda: self.rx_pkts)
        registry.gauge(f"{base}.sprayed_pkts", lambda: self.sprayed_pkts)
        registry.gauge(f"{base}.multipath_pkts", lambda: self.multipath_pkts)
        registry.gauge(f"{base}.cnps_sent", lambda: self.cnps_sent)
        registry.gauge(f"{base}.no_route_drops", lambda: self.no_route_drops)
        registry.gauge(f"{base}.down_node_drops", lambda: self.down_node_drops)
        registry.gauge(f"{base}.up", lambda: self.up)

    def set_mode(self, mode: str) -> None:
        if mode not in self.MODES:
            raise ValueError(f"unknown selection mode {mode!r}")
        self.mode = mode

    def receive(self, pkt: Packet) -> None:
        """Forward ``pkt`` toward its destination host.

        The switch's :class:`~repro.sim.boundary.PacketSink` entry point:
        links deliver here, and the chosen egress port is handed the
        packet through its own ``receive``.
        """
        if not self.up:
            # A crashed switch neither forwards nor buffers. Reachable
            # only when a cable into the dead node is up (e.g. restored
            # by an independent link-level scenario).
            self._count_down_drop()
            return
        if pkt.kind > CNP:
            # PFC PAUSE/RESUME terminate here: MAC control frames are
            # hop-local, never forwarded. One int compare per packet is
            # the whole cost on lossy fabrics.
            self._handle_pfc(pkt)
            return
        self.rx_pkts += 1
        pkt.hops += 1
        try:
            choices = self.nexthops[pkt.dst]
        except KeyError:
            # A destination this switch has never heard of is a wiring
            # bug (an empty-but-known next-hop set below is a routed
            # drop instead).
            raise LookupError(
                f"switch {self.name} has no route to host {pkt.dst}"
            ) from None
        if not choices:
            self.no_route_drops += 1
            obs = self.sim.obs
            if obs is not None:
                obs.metrics.counter("routing.no_route_drops").inc()
                ev = obs.events
                if ev is not None and ev.wants("route"):
                    ev.emit("route", "no_route_drop", t=self.sim.now,
                            switch=self.name, dst=pkt.dst,
                            flow=pkt.flow_id, seq=pkt.seq)
            return
        n = len(choices)
        if n == 1:
            port = choices[0]
        elif self.mode != "rps":
            key = (pkt.src, pkt.dst, pkt.sport, pkt.dport)
            cache = self._hash_cache
            try:
                idx = cache[key]
            except KeyError:
                if len(cache) >= 65536:  # bound memory under sport churn
                    cache.clear()
                idx = cache[key] = flow_hash(*key, self.salt)
            port = choices[idx % n]
            self.multipath_pkts += 1
        else:
            port = choices[self._rng.randrange(n)]
            self.sprayed_pkts += 1
        qcn = self.qcn
        if (
            qcn is not None
            and pkt.kind == DATA
            # occupancy_bytes(), not raw bytes_queued: a batch-advanced
            # port settles finished serializations lazily, and the QCN
            # decision must see the reference-exact occupancy.
            and port.occupancy_bytes() > qcn.threshold_bytes
        ):
            self._maybe_send_cnp(pkt)
        port.receive(pkt)

    def _handle_pfc(self, pkt: Packet) -> None:
        """Apply a PAUSE/RESUME to the egress port feeding its sender.

        The frame's ``src`` is the pausing neighbor and ``seq`` the
        parallel-cable index, so the target is exactly this switch's
        port onto the cable the frame arrived on. Frames for unknown
        ports (sender crashed and was unwired mid-flight) are ignored.
        """
        self.pfc_frames_rx += 1
        port = self.ports.get((pkt.src, pkt.seq))
        if port is None:
            return
        if pkt.kind == PAUSE:
            port.pause(pkt.payload)
        else:
            port.resume()

    def _maybe_send_cnp(self, pkt: Packet) -> None:
        now = self.sim.now
        last = self._qcn_last_ps.get(pkt.flow_id, -(1 << 62))
        if now - last < self.qcn.min_interval_ps:
            return
        self._qcn_last_ps[pkt.flow_id] = now
        self.cnps_sent += 1
        cnp = make_cnp(pkt.flow_id, switch_src=self.node_id, dst=pkt.src)
        # The CNP is forwarded like any packet, from this switch.
        self.receive(cnp)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Switch {self.name} mode={self.mode} ports={len(self.ports)}>"
