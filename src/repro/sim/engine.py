"""Discrete-event simulation engine.

A minimal, fast event loop: a binary heap of ``(time, seq, handle)``
entries where ``seq`` is a monotonically increasing tie-breaker so that
events scheduled for the same picosecond fire in scheduling order. Handles
support O(1) cancellation (the loop skips cancelled entries on pop), which
is how retransmission timers and block timers are rescheduled cheaply.

Two mechanisms keep the heap small on the packet hot path:

- **Coalesced event streams** (:meth:`Simulator.reserve_seq` /
  :meth:`Simulator.at_seq` / :meth:`Simulator.rearm`): a component whose
  events are inherently FIFO — link deliveries at constant propagation
  delay, back-to-back port serializations — keeps ONE armed heap entry
  and re-arms it for the next head instead of scheduling one event per
  packet. Reserving the tie-break ``seq`` at the instant the event
  *would* have been scheduled makes the coalesced stream fire in exactly
  the per-event order: the heap orders by ``(time, seq)`` and does not
  require seqs to be pushed monotonically.
- **Tombstone compaction**: cancelled handles stay in the heap as
  tombstones (cancellation is O(1) amortised); when tombstones reach
  half the heap the *cancel* that crossed the threshold rebuilds it in
  place, so pathological timer churn cannot degrade every subsequent
  heap operation — and the per-packet schedule path never re-checks.
- **Event credits** (:meth:`Simulator.credit_events`): a component that
  batch-advances several logical events inside one callback (a port
  settling its precomputed drain schedule) credits the absorbed events,
  keeping :attr:`Simulator.events_executed` equal to what the
  one-callback-per-packet reference path would have executed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro import obs as _obs

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability

# Sentinel bound for "run forever": larger than any representable sim
# time, so the lean loop compares ints against one local instead of
# testing ``until is not None`` per event.
_NO_LIMIT = 1 << 200


class EventHandle:
    """A scheduled callback; ``cancel()`` prevents it from firing.

    ``cancel()`` is idempotent, and a no-op once the handle has fired:
    the engine flips ``fired`` as it pops the entry, so a late cancel
    (a component tearing down a timer that already went off) neither
    tombstones anything nor skews the simulator's cancellation count.
    Re-arming (:meth:`Simulator.rearm`) clears ``fired`` again.
    """

    __slots__ = ("time", "fn", "args", "cancelled", "fired", "sim")

    def __init__(self, time: int, fn: Callable[..., Any], args: tuple,
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self.sim = sim

    def cancel(self) -> None:
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        # Drop references so cancelled timers don't pin packets/flows alive.
        self.fn = _noop
        self.args = ()
        sim = self.sim
        if sim is not None:
            # Compaction is sized and triggered here, on the cancel path:
            # cancelling is orders of magnitude rarer than scheduling, so
            # the per-packet schedule path stays branch-free.
            sim._n_cancelled = n = sim._n_cancelled + 1
            if (n > sim.COMPACT_MIN_TOMBSTONES
                    and n * 2 >= len(sim._heap)):
                sim._compact()


def _noop(*_args: Any) -> None:
    return None


class Simulator:
    """The event loop. ``now`` is the current time in integer picoseconds."""

    # Compact the heap when tombstones pass this count AND make up at
    # least half of it. The absolute floor keeps tiny heaps (a handful
    # of timers, most of them dead between bursts) from compacting on
    # every schedule call for no measurable gain.
    COMPACT_MIN_TOMBSTONES = 64

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, EventHandle]] = []
        self._seq: int = 0
        self._n_executed: int = 0
        self._n_cancelled: int = 0  # cancelled entries still in the heap
        self.compactions: int = 0   # tombstone compaction passes run
        # Telemetry bundle (repro.obs). None by default: every component
        # caches this at construction, so the disabled path costs one
        # ``is None`` test. A TelemetryContext in force at construction
        # time attaches a bundle here automatically.
        self.obs: Optional["Observability"] = None
        ctx = _obs.active_context()
        if ctx is not None:
            ctx.attach(self)

    # -- scheduling ------------------------------------------------------

    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: t={time} < now={self.now}"
            )
        handle = EventHandle(time, fn, args, self)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, handle))
        return handle

    def after(self, delay: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` ``delay`` picoseconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        # Inlined body of at(): this is the hottest scheduling entry
        # point (one call per packet per hop), and now + delay can never
        # be in the past. Compaction is checked on the cancel path (see
        # EventHandle.cancel), never here.
        time = self.now + delay
        handle = EventHandle(time, fn, args, self)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, handle))
        return handle

    def reserve_seq(self) -> int:
        """Claim the tie-break sequence the next scheduled event would
        get. Coalesced event streams (link delivery deques) reserve a seq
        per deferred event at the instant it *would* have been scheduled,
        then arm the real heap entry later with :meth:`at_seq` — firing
        order stays identical to the one-event-per-packet schedule."""
        self._seq += 1
        return self._seq

    def at_seq(self, time: int, seq: int, fn: Callable[..., Any],
               *args: Any) -> EventHandle:
        """Schedule with a previously :meth:`reserve_seq`-reserved
        tie-breaker. ``time`` must be >= now, as with :meth:`at`."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: t={time} < now={self.now}"
            )
        handle = EventHandle(time, fn, args, self)
        heapq.heappush(self._heap, (time, seq, handle))
        return handle

    def rearm(self, handle: EventHandle, time: int,
              seq: Optional[int] = None) -> None:
        """Re-push a handle that has already fired (it must not be in the
        heap, and must not be cancelled). This is the allocation-free way
        for a component with one perpetual event — a port's serializer,
        a link's delivery drain — to schedule its next firing: no new
        EventHandle, just one heap entry. With ``seq`` None a fresh
        tie-breaker is drawn, exactly as ``at(time, ...)`` would."""
        if handle.cancelled:
            raise ValueError("cannot rearm a cancelled handle")
        if seq is None:
            self._seq += 1
            seq = self._seq
        handle.time = time
        handle.fired = False
        heapq.heappush(self._heap, (time, seq, handle))

    def credit_events(self, n: int) -> None:
        """Account ``n`` logical events that a batch-advance executed
        without individual callbacks.

        A component that coalesces several per-packet events into one
        callback (a port settling its precomputed drain schedule)
        credits the events it absorbed, so :attr:`events_executed`
        keeps counting *simulation* events — the unit every benchmark
        and the batch-vs-reference equality tests compare — rather
        than Python callback invocations. ``max_events`` budgets count
        callbacks only and are unaffected.
        """
        self._n_executed += n

    def _compact(self) -> None:
        """Drop tombstones and re-heapify, in place: ``run()`` holds a
        local reference to the heap list, so its identity must survive."""
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._n_cancelled = 0
        self.compactions += 1

    # -- execution -------------------------------------------------------

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the heap empties, ``until`` is reached, or
        ``max_events`` have executed. Returns the number of events executed
        by this call. After running with ``until``, ``now`` is advanced to
        ``until`` even if the heap emptied earlier.

        With ``sim.obs.profile`` set, an instrumented loop that times
        every callback runs instead; the lean loop below is untouched by
        telemetry (the check is per ``run()`` call, not per event).
        """
        if self.obs is not None and self.obs.profile is not None:
            return self._run_profiled(until, max_events)
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        limit = _NO_LIMIT if until is None else until
        # Pop-first: popping returns the entry the peek would read, so
        # the loop touches the heap once per event; the rare entry past
        # the limit (at most one per run() call) is pushed back. The
        # common no-budget call gets a loop with one fewer compare per
        # event, and an IndexError from popping the emptied heap ends it
        # (zero-cost try; no per-iteration truthiness test).
        try:
            if max_events is None:
                while True:
                    time, _, handle = pop(heap)
                    if time > limit:
                        heapq.heappush(heap, (time, _, handle))
                        break
                    if handle.cancelled:
                        self._n_cancelled -= 1
                        continue
                    self.now = time
                    handle.fired = True
                    handle.fn(*handle.args)
                    executed += 1
            else:
                budget = max_events
                while True:
                    time, _, handle = pop(heap)
                    if time > limit:
                        heapq.heappush(heap, (time, _, handle))
                        break
                    if handle.cancelled:
                        self._n_cancelled -= 1
                        continue
                    self.now = time
                    handle.fired = True
                    handle.fn(*handle.args)
                    executed += 1
                    if executed == budget:
                        break
        except IndexError:
            pass
        if until is not None and self.now < until and (
            not heap or heap[0][0] > until
        ):
            self.now = until
        self._n_executed += executed
        return executed

    def _run_profiled(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Same semantics as the lean loop in :meth:`run`, with every
        callback timed and attributed to its site by the profiler."""
        profiler = self.obs.profile
        clock = profiler.clock
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        limit = _NO_LIMIT if until is None else until
        budget = -1 if max_events is None else max_events
        t_loop = clock()
        while heap:
            entry = pop(heap)
            time = entry[0]
            if time > limit:
                heapq.heappush(heap, entry)
                break
            handle = entry[2]
            if handle.cancelled:
                self._n_cancelled -= 1
                continue
            self.now = time
            handle.fired = True
            fn = handle.fn
            t0 = clock()
            fn(*handle.args)
            profiler.account(fn, clock() - t0)
            executed += 1
            if executed == budget:
                break
        if until is not None and self.now < until and (
            not heap or heap[0][0] > until
        ):
            self.now = until
        self._n_executed += executed
        profiler.add_wall(clock() - t_loop)
        return executed

    def step(self) -> bool:
        """Execute exactly one (non-cancelled) event; False if none remain."""
        heap = self._heap
        while heap:
            time, _, handle = heapq.heappop(heap)
            if handle.cancelled:
                self._n_cancelled -= 1
                continue
            self.now = time
            handle.fired = True
            handle.fn(*handle.args)
            self._n_executed += 1
            return True
        return False

    @property
    def pending(self) -> int:
        """Raw heap length — live events AND cancelled tombstones still
        awaiting their pop (or a compaction pass). For "is there anything
        left to run" questions use :attr:`live_pending` or
        :meth:`peek_time`, which ignore tombstones."""
        return len(self._heap)

    @property
    def live_pending(self) -> int:
        """Number of heap entries that will actually fire (cancelled
        tombstones excluded)."""
        n = len(self._heap) - self._n_cancelled
        return n if n > 0 else 0

    @property
    def events_executed(self) -> int:
        return self._n_executed

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._n_cancelled -= 1
        return heap[0][0] if heap else None
