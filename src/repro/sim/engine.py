"""Discrete-event simulation engine.

A minimal, fast event loop: a binary heap of ``(time, seq, handle)``
entries where ``seq`` is a monotonically increasing tie-breaker so that
events scheduled for the same picosecond fire in scheduling order. Handles
support O(1) cancellation (the loop skips cancelled entries on pop), which
is how retransmission timers and block timers are rescheduled cheaply.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional, TYPE_CHECKING

from repro import obs as _obs

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability


class EventHandle:
    """A scheduled callback; ``cancel()`` prevents it from firing."""

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True
        # Drop references so cancelled timers don't pin packets/flows alive.
        self.fn = _noop
        self.args = ()


def _noop(*_args: Any) -> None:
    return None


class Simulator:
    """The event loop. ``now`` is the current time in integer picoseconds."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, EventHandle]] = []
        self._seq: int = 0
        self._n_executed: int = 0
        # Telemetry bundle (repro.obs). None by default: every component
        # caches this at construction, so the disabled path costs one
        # ``is None`` test. A TelemetryContext in force at construction
        # time attaches a bundle here automatically.
        self.obs: Optional["Observability"] = None
        ctx = _obs.active_context()
        if ctx is not None:
            ctx.attach(self)

    # -- scheduling ------------------------------------------------------

    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: t={time} < now={self.now}"
            )
        handle = EventHandle(time, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, handle))
        return handle

    def after(self, delay: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` ``delay`` picoseconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.now + delay, fn, *args)

    # -- execution -------------------------------------------------------

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the heap empties, ``until`` is reached, or
        ``max_events`` have executed. Returns the number of events executed
        by this call. After running with ``until``, ``now`` is advanced to
        ``until`` even if the heap emptied earlier.

        With ``sim.obs.profile`` set, an instrumented loop that times
        every callback runs instead; the lean loop below is untouched by
        telemetry (the check is per ``run()`` call, not per event).
        """
        if self.obs is not None and self.obs.profile is not None:
            return self._run_profiled(until, max_events)
        executed = 0
        heap = self._heap
        while heap:
            time, _, handle = heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(heap)
            if handle.cancelled:
                continue
            self.now = time
            handle.fn(*handle.args)
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        if until is not None and self.now < until and (
            not heap or heap[0][0] > until
        ):
            self.now = until
        self._n_executed += executed
        return executed

    def _run_profiled(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Same semantics as the lean loop in :meth:`run`, with every
        callback timed and attributed to its site by the profiler."""
        profiler = self.obs.profile
        clock = profiler.clock
        executed = 0
        heap = self._heap
        t_loop = clock()
        while heap:
            time, _, handle = heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(heap)
            if handle.cancelled:
                continue
            self.now = time
            fn = handle.fn
            t0 = clock()
            fn(*handle.args)
            profiler.account(fn, clock() - t0)
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        if until is not None and self.now < until and (
            not heap or heap[0][0] > until
        ):
            self.now = until
        self._n_executed += executed
        profiler.add_wall(clock() - t_loop)
        return executed

    def step(self) -> bool:
        """Execute exactly one (non-cancelled) event; False if none remain."""
        heap = self._heap
        while heap:
            time, _, handle = heapq.heappop(heap)
            if handle.cancelled:
                continue
            self.now = time
            handle.fn(*handle.args)
            self._n_executed += 1
            return True
        return False

    @property
    def pending(self) -> int:
        """Number of heap entries (including cancelled tombstones)."""
        return len(self._heap)

    @property
    def events_executed(self) -> int:
        return self._n_executed

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None
