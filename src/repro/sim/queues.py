"""Egress ports: drop-tail queues with RED ECN marking and phantom queues.

A :class:`Port` is the egress queue a node (switch or host NIC) attaches to
one of its outgoing links. It models:

- a byte-bounded drop-tail FIFO;
- RED ECN marking on *instantaneous* occupancy (paper section 5.1: never
  mark below ``min_th`` = 25 % of capacity, always mark above ``max_th`` =
  75 %, linear probability in between);
- an optional **phantom queue** [HULL, NSDI'12]: a virtual byte counter
  incremented on every enqueue and drained at a constant rate slightly
  below line rate (paper default: 0.9x). When the phantom occupancy
  exceeds its threshold, packets are ECN-marked even though the physical
  queue may be empty — this is what lets UnoCC keep physical queues at
  near-zero occupancy while still pacing inter-DC flows whose BDP exceeds
  any physical buffer (paper sections 3.2, 4.1.3).
"""

from __future__ import annotations

import random
from collections import deque
from heapq import heappush
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sim.boundary import PacketSink, check_sink
from repro.sim.packet import Packet
from repro.sim.units import gbps_to_bytes_per_ps

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.link import Link


@dataclass(frozen=True)
class REDConfig:
    """RED ECN marking thresholds as fractions of queue capacity."""

    min_frac: float = 0.25
    max_frac: float = 0.75

    def __post_init__(self) -> None:
        if not (0.0 <= self.min_frac <= self.max_frac <= 1.0):
            raise ValueError(
                f"invalid RED thresholds: min={self.min_frac} max={self.max_frac}"
            )


@dataclass(frozen=True)
class PhantomQueueConfig:
    """Phantom queue parameters.

    ``drain_fraction`` is the phantom drain rate as a fraction of the
    physical line rate (paper default 0.9). Marking is RED-style on the
    virtual occupancy, like the physical queue's: never below
    ``mark_threshold_bytes``, always above ``max_frac_of_threshold`` times
    it, linear in between. Probabilistic marking matters for the mixed
    intra/inter equilibrium: a binary threshold makes the fast intra loop
    park the occupancy exactly at the threshold and then every inter-DC
    packet is marked, starving the slow loop.
    """

    drain_fraction: float = 0.9
    mark_threshold_bytes: int = 100 * 1024
    max_frac_of_threshold: float = 3.0

    def __post_init__(self) -> None:
        if not (0.0 < self.drain_fraction <= 1.0):
            raise ValueError(f"invalid drain fraction {self.drain_fraction}")
        if self.mark_threshold_bytes <= 0:
            raise ValueError("phantom threshold must be positive")
        if self.max_frac_of_threshold < 1.0:
            raise ValueError("max threshold must be >= min threshold")


class PhantomQueue:
    """Virtual queue: byte counter with constant-rate lazy draining."""

    __slots__ = (
        "occupancy",
        "_drain_bytes_per_ps",
        "_last_ps",
        "min_th",
        "max_th",
        "_rng",
    )

    def __init__(self, config: PhantomQueueConfig, line_gbps: float,
                 rng: Optional[random.Random] = None):
        self.occupancy = 0.0
        self._drain_bytes_per_ps = (
            config.drain_fraction * gbps_to_bytes_per_ps(line_gbps)
        )
        self._last_ps = 0
        self.min_th = float(config.mark_threshold_bytes)
        self.max_th = config.max_frac_of_threshold * self.min_th
        self._rng = rng or random.Random(0)

    def _drain_to(self, now_ps: int) -> None:
        elapsed = now_ps - self._last_ps
        if elapsed > 0:
            self.occupancy = max(
                0.0, self.occupancy - elapsed * self._drain_bytes_per_ps
            )
            self._last_ps = now_ps

    def on_enqueue(self, nbytes: int, now_ps: int) -> bool:
        """Account an arrival; returns True if the packet should be marked."""
        # _drain_to inlined: this runs once per data packet per hop.
        elapsed = now_ps - self._last_ps
        occ = self.occupancy
        if elapsed > 0:
            occ -= elapsed * self._drain_bytes_per_ps
            if occ < 0.0:
                occ = 0.0
            self._last_ps = now_ps
        occ += nbytes
        self.occupancy = occ
        if occ <= self.min_th:
            return False
        if occ >= self.max_th:
            return True
        span = self.max_th - self.min_th
        p = (occ - self.min_th) / span if span > 0 else 1.0
        return self._rng.random() < p

    def occupancy_at(self, now_ps: int) -> float:
        self._drain_to(now_ps)
        return self.occupancy


class Port:
    """Egress queue + transmitter feeding one unidirectional link."""

    __slots__ = (
        "sim",
        "link",
        "_sink",
        "name",
        "capacity_bytes",
        "red",
        "phantom",
        "_rng",
        "_fifo",
        "bytes_queued",
        "_busy",
        "drops",
        "enqueued_pkts",
        "marked_pkts",
        "red_marked_pkts",
        "phantom_marked_pkts",
        "tx_bytes",
        "monitor",
        "_events",
        "int_t_ref_ps",
        "_int_win_start",
        "_int_win_bytes",
        "_int_rate",
        "_gbps",
        "_red_min_th",
        "_red_max_th",
        "_red_span",
        "_tx_handle",
    )

    def __init__(
        self,
        sim: "Simulator",
        link: "Link",
        capacity_bytes: int,
        red: Optional[REDConfig] = None,
        phantom: Optional[PhantomQueueConfig] = None,
        rng: Optional[random.Random] = None,
        name: str = "",
    ):
        if capacity_bytes <= 0:
            raise ValueError("queue capacity must be positive")
        self.sim = sim
        self.link = link
        # Downstream PacketSink fed by _finish_tx. Defaults to the link;
        # shard boundaries re-route it through divert().
        self._sink = link
        self.name = name or f"port->{link.name}"
        self.capacity_bytes = capacity_bytes
        self.red = red or REDConfig()
        self._rng = rng or random.Random(0)
        self.phantom = (
            PhantomQueue(phantom, link.gbps,
                         rng=random.Random(self._rng.getrandbits(63)))
            if phantom is not None
            else None
        )
        self._fifo: deque[Packet] = deque()
        self.bytes_queued = 0
        self._busy = False
        self.drops = 0
        self.enqueued_pkts = 0
        self.marked_pkts = 0
        self.red_marked_pkts = 0      # marks decided by physical RED
        self.phantom_marked_pkts = 0  # marks decided by the phantom queue
        self.tx_bytes = 0
        # Hot-path precomputation: link rate and RED thresholds are
        # immutable after construction, so the per-packet path reads
        # them from slots instead of recomputing frac * capacity.
        self._gbps = link.gbps
        self._red_min_th = self.red.min_frac * capacity_bytes
        self._red_max_th = self.red.max_frac * capacity_bytes
        self._red_span = self._red_max_th - self._red_min_th
        # The one perpetual serialization event: allocated on the first
        # transmission, re-armed (never re-allocated) for every later one.
        self._tx_handle = None
        # Optional callable(port, event, pkt, info): fired on "drop" and
        # "mark"; for marks ``info`` carries the decision
        # {"phys": bool, "phantom": bool} (a mark may come from both).
        self.monitor = None
        obs = sim.obs
        self._events = obs.events if obs is not None else None
        if obs is not None:
            obs.metrics.defer(self._register_metrics)
        # In-band network telemetry (for HPCC-class transports): when
        # enabled, every transmitted packet carries the max per-hop
        # utilization U = qlen/(B*T) + txRate/B along its path.
        self.int_t_ref_ps: Optional[int] = None
        self._int_win_start = 0
        self._int_win_bytes = 0
        self._int_rate = 0.0  # bytes per ps over the last window

    def _register_metrics(self, registry) -> None:
        from repro.obs.metrics import metric_key

        base = f"port.{metric_key(self.name)}"
        registry.gauge(f"{base}.enqueued_pkts", lambda: self.enqueued_pkts)
        registry.gauge(f"{base}.drops", lambda: self.drops)
        registry.gauge(f"{base}.marked_pkts", lambda: self.marked_pkts)
        registry.gauge(f"{base}.red_marked_pkts",
                       lambda: self.red_marked_pkts)
        registry.gauge(f"{base}.phantom_marked_pkts",
                       lambda: self.phantom_marked_pkts)
        registry.gauge(f"{base}.tx_bytes", lambda: self.tx_bytes)
        registry.gauge(f"{base}.queued_pkts", lambda: len(self._fifo))
        registry.gauge(f"{base}.queued_bytes", lambda: self.bytes_queued)

    def enable_int(self, t_ref_ps: int) -> None:
        """Turn on INT stamping with HPCC's base-RTT reference ``T``."""
        if t_ref_ps <= 0:
            raise ValueError("INT reference time must be positive")
        self.int_t_ref_ps = t_ref_ps

    # -- marking ---------------------------------------------------------

    def _red_marks(self, occupancy_before: int) -> bool:
        if occupancy_before < self._red_min_th:
            return False
        if occupancy_before >= self._red_max_th:
            return True
        span = self._red_span
        p = (occupancy_before - self._red_min_th) / span if span > 0 else 1.0
        return self._rng.random() < p

    # -- wiring ----------------------------------------------------------

    def divert(self, sink: "PacketSink") -> "PacketSink":
        """Replace the downstream sink; returns the previous one.

        The sanctioned rewiring point of the handoff boundary: serialized
        packets flow to ``sink.receive`` instead of the port's link. Shard
        boundaries use it to capture cross-cut traffic at transmit time
        (so loss-model draws and telemetry on the original link are
        bypassed together — the far shard replays delivery). Normal
        topology wiring never calls this.
        """
        old = self._sink
        self._sink = check_sink(sink, f"port {self.name}.divert")
        return old

    # -- datapath --------------------------------------------------------

    def enqueue(self, pkt: Packet) -> bool:
        """Offer a packet; returns False if it was tail-dropped."""
        now = self.sim.now
        ev = self._events
        size = pkt.size
        occupancy = self.bytes_queued
        if occupancy + size > self.capacity_bytes:
            self.drops += 1
            if ev is not None and ev.wants("queue"):
                ev.emit("queue", "drop", t=now, port=self.name,
                        flow=pkt.flow_id, seq=pkt.seq, size=size,
                        queued_bytes=occupancy)
            if self.monitor is not None:
                self.monitor(self, "drop", pkt, {})
            return False
        # RNG draw order (RED first, then phantom) is load-bearing: it
        # must not depend on whether telemetry is attached. RED is
        # inlined here (thresholds precomputed at construction); the RNG
        # is drawn exactly when min_th <= occupancy < max_th, as in
        # _red_marks.
        if occupancy < self._red_min_th:
            red_marked = False
        elif occupancy >= self._red_max_th:
            red_marked = True
        else:
            span = self._red_span
            p = (occupancy - self._red_min_th) / span if span > 0 else 1.0
            red_marked = self._rng.random() < p
        phantom = self.phantom
        phantom_marked = (
            phantom.on_enqueue(size, now) if phantom is not None else False
        )
        if red_marked or phantom_marked:
            pkt.ecn = True
            self.marked_pkts += 1
            if red_marked:
                self.red_marked_pkts += 1
            if phantom_marked:
                self.phantom_marked_pkts += 1
            if ev is not None and ev.wants("queue"):
                ev.emit("queue", "mark", t=now, port=self.name,
                        flow=pkt.flow_id, seq=pkt.seq,
                        phys=red_marked, phantom=phantom_marked)
            if self.monitor is not None:
                self.monitor(self, "mark", pkt,
                             {"phys": red_marked, "phantom": phantom_marked})
        self.enqueued_pkts += 1
        if ev is not None and ev.wants("queue"):
            ev.emit("queue", "enqueue", t=now, port=self.name,
                    flow=pkt.flow_id, seq=pkt.seq, size=size)
        self._fifo.append(pkt)
        self.bytes_queued = occupancy + size
        if not self._busy:
            # Idle port: the packet just appended is the head; start its
            # serialization. Same arithmetic as units.ser_time_ps,
            # inlined — it must stay bit-identical to it.
            self._busy = True
            ser = round(size * 8000 / self._gbps)
            if ser < 1:
                ser = 1
            sim = self.sim
            handle = self._tx_handle
            if handle is None:
                self._tx_handle = sim.after(ser, self._finish_tx)
            else:
                # sim.rearm(handle, now + ser) inlined: one push per
                # serialized packet makes the call overhead measurable.
                sim._seq = seq = sim._seq + 1
                handle.time = t = now + ser
                heappush(sim._heap, (t, seq, handle))
        return True

    def _finish_tx(self) -> None:
        fifo = self._fifo
        pkt = fifo.popleft()
        size = pkt.size
        self.bytes_queued -= size
        self.tx_bytes += size
        if self.int_t_ref_ps is not None:
            self._stamp_int(pkt)
        self._sink.receive(pkt)
        if fifo:
            # Back-to-back serialization: re-arm the one tx event for the
            # next head (allocation-free; same (time, seq) the per-packet
            # schedule would draw; sim.rearm inlined as in enqueue).
            sim = self.sim
            ser = round(fifo[0].size * 8000 / self._gbps)
            if ser < 1:
                ser = 1
            sim._seq = seq = sim._seq + 1
            handle = self._tx_handle
            handle.time = t = sim.now + ser
            heappush(sim._heap, (t, seq, handle))
        else:
            self._busy = False

    def _stamp_int(self, pkt: Packet) -> None:
        t_ref = self.int_t_ref_ps
        now = self.sim.now
        self._int_win_bytes += pkt.size
        elapsed = now - self._int_win_start
        if elapsed >= t_ref:
            self._int_rate = self._int_win_bytes / elapsed
            self._int_win_start = now
            self._int_win_bytes = 0
        line_bytes_per_ps = gbps_to_bytes_per_ps(self.link.gbps)
        util = (
            self.bytes_queued / (line_bytes_per_ps * t_ref)
            + self._int_rate / line_bytes_per_ps
        )
        if util > pkt.int_util:
            pkt.int_util = util

    # PacketSink conformance: handing a packet to a port means offering
    # it to the egress queue (upstream callers ignore the drop bool).
    receive = enqueue

    # -- introspection ---------------------------------------------------

    def occupancy_bytes(self) -> int:
        return self.bytes_queued

    def phantom_occupancy(self) -> float:
        if self.phantom is None:
            return 0.0
        return self.phantom.occupancy_at(self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Port {self.name} q={self.bytes_queued}B drops={self.drops}>"
