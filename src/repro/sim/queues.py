"""Egress ports: drop-tail queues with RED ECN marking and phantom queues.

A :class:`Port` is the egress queue a node (switch or host NIC) attaches to
one of its outgoing links. It models:

- a byte-bounded drop-tail FIFO;
- RED ECN marking on *instantaneous* occupancy (paper section 5.1: never
  mark below ``min_th`` = 25 % of capacity, always mark above ``max_th`` =
  75 %, linear probability in between);
- an optional **phantom queue** [HULL, NSDI'12]: a virtual byte counter
  incremented on every enqueue and drained at a constant rate slightly
  below line rate (paper default: 0.9x). When the phantom occupancy
  exceeds its threshold, packets are ECN-marked even though the physical
  queue may be empty — this is what lets UnoCC keep physical queues at
  near-zero occupancy while still pacing inter-DC flows whose BDP exceeds
  any physical buffer (paper sections 3.2, 4.1.3).

Steady-state FIFO work is **batch-advanced**: when no decision can change
between a packet's enqueue and its serialization finish — coalesced link,
no loss model, no PFC, no INT stamping, no diverted sink — the port
computes the finish time at *enqueue* (exact integer arithmetic, identical
to the per-packet path's) and hands the packet straight to the link's
in-flight deque, so the engine never runs a per-packet finish callback.
The pending finishes live in a drain *schedule* ``(finish_ps, size)``;
occupancy/tx counters are settled lazily from it (every read goes through
a settle), and each settled entry credits one engine event so
``events_executed`` matches the reference path. Any boundary where a
decision could change — PFC arming, ``divert()``, INT enablement, link
failure or loss-model attach, a control frame racing the schedule —
*rolls back*: unfinished packets return to the FIFO and re-serialize via
the reference per-packet path, keeping behavior event-for-event
identical. Set the module flag ``BATCH_DRAIN = False`` before
constructing ports to force the reference path everywhere (the equality
tests diff the two).
"""

from __future__ import annotations

import random
from collections import deque
from heapq import heappush
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sim.boundary import PacketSink, check_sink
from repro.sim.packet import Packet
from repro.sim.units import gbps_to_bytes_per_ps

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.link import Link

# Batch-advance escape hatch: evaluated on every (re)computation of a
# port's batch eligibility, so tests flip it before building a topology
# to force the reference one-callback-per-packet path.
BATCH_DRAIN = True


@dataclass(frozen=True)
class REDConfig:
    """RED ECN marking thresholds as fractions of queue capacity."""

    min_frac: float = 0.25
    max_frac: float = 0.75

    def __post_init__(self) -> None:
        if not (0.0 <= self.min_frac <= self.max_frac <= 1.0):
            raise ValueError(
                f"invalid RED thresholds: min={self.min_frac} max={self.max_frac}"
            )


@dataclass(frozen=True)
class PhantomQueueConfig:
    """Phantom queue parameters.

    ``drain_fraction`` is the phantom drain rate as a fraction of the
    physical line rate (paper default 0.9). Marking is RED-style on the
    virtual occupancy, like the physical queue's: never below
    ``mark_threshold_bytes``, always above ``max_frac_of_threshold`` times
    it, linear in between. Probabilistic marking matters for the mixed
    intra/inter equilibrium: a binary threshold makes the fast intra loop
    park the occupancy exactly at the threshold and then every inter-DC
    packet is marked, starving the slow loop.
    """

    drain_fraction: float = 0.9
    mark_threshold_bytes: int = 100 * 1024
    max_frac_of_threshold: float = 3.0

    def __post_init__(self) -> None:
        if not (0.0 < self.drain_fraction <= 1.0):
            raise ValueError(f"invalid drain fraction {self.drain_fraction}")
        if self.mark_threshold_bytes <= 0:
            raise ValueError("phantom threshold must be positive")
        if self.max_frac_of_threshold < 1.0:
            raise ValueError("max threshold must be >= min threshold")


class PhantomQueue:
    """Virtual queue: byte counter with constant-rate lazy draining."""

    __slots__ = (
        "occupancy",
        "_drain_bytes_per_ps",
        "_last_ps",
        "min_th",
        "max_th",
        "_rng",
    )

    def __init__(self, config: PhantomQueueConfig, line_gbps: float,
                 rng: Optional[random.Random] = None):
        self.occupancy = 0.0
        self._drain_bytes_per_ps = (
            config.drain_fraction * gbps_to_bytes_per_ps(line_gbps)
        )
        self._last_ps = 0
        self.min_th = float(config.mark_threshold_bytes)
        self.max_th = config.max_frac_of_threshold * self.min_th
        self._rng = rng or random.Random(0)

    def _drain_to(self, now_ps: int) -> None:
        elapsed = now_ps - self._last_ps
        if elapsed > 0:
            self.occupancy = max(
                0.0, self.occupancy - elapsed * self._drain_bytes_per_ps
            )
            self._last_ps = now_ps

    def on_enqueue(self, nbytes: int, now_ps: int) -> bool:
        """Account an arrival; returns True if the packet should be marked."""
        # _drain_to inlined: this runs once per data packet per hop.
        elapsed = now_ps - self._last_ps
        occ = self.occupancy
        if elapsed > 0:
            occ -= elapsed * self._drain_bytes_per_ps
            if occ < 0.0:
                occ = 0.0
            self._last_ps = now_ps
        occ += nbytes
        self.occupancy = occ
        if occ <= self.min_th:
            return False
        if occ >= self.max_th:
            return True
        span = self.max_th - self.min_th
        p = (occ - self.min_th) / span if span > 0 else 1.0
        return self._rng.random() < p

    def occupancy_at(self, now_ps: int) -> float:
        self._drain_to(now_ps)
        return self.occupancy


class Port:
    """Egress queue + transmitter feeding one unidirectional link."""

    __slots__ = (
        "sim",
        "link",
        "_sink",
        "name",
        "capacity_bytes",
        "red",
        "phantom",
        "_rng",
        "_fifo",
        "bytes_queued",
        "_busy",
        "drops",
        "enqueued_pkts",
        "marked_pkts",
        "red_marked_pkts",
        "phantom_marked_pkts",
        "tx_bytes",
        "monitor",
        "_events",
        "int_t_ref_ps",
        "_int_win_start",
        "_int_win_bytes",
        "_int_rate",
        "_gbps",
        "_red_min_th",
        "_red_max_th",
        "_red_span",
        "_tx_handle",
        "_sched",
        "_busy_until",
        "_batch",
        "_ser_cache",
        "pfc",
        "pfc_enabled",
        "_paused",
        "_pause_until",
        "_pause_handle",
        "_pause_started_ps",
        "paused_time_ps",
        "pause_frames_rx",
        "_xoff",
        "_xoff_bytes",
        "_xon_bytes",
    )

    def __init__(
        self,
        sim: "Simulator",
        link: "Link",
        capacity_bytes: int,
        red: Optional[REDConfig] = None,
        phantom: Optional[PhantomQueueConfig] = None,
        rng: Optional[random.Random] = None,
        name: str = "",
    ):
        if capacity_bytes <= 0:
            raise ValueError("queue capacity must be positive")
        self.sim = sim
        self.link = link
        # Downstream PacketSink fed by _finish_tx. Defaults to the link;
        # shard boundaries re-route it through divert().
        self._sink = link
        self.name = name or f"port->{link.name}"
        self.capacity_bytes = capacity_bytes
        self.red = red or REDConfig()
        self._rng = rng or random.Random(0)
        self.phantom = (
            PhantomQueue(phantom, link.gbps,
                         rng=random.Random(self._rng.getrandbits(63)))
            if phantom is not None
            else None
        )
        self._fifo: deque[Packet] = deque()
        self.bytes_queued = 0
        self._busy = False
        self.drops = 0
        self.enqueued_pkts = 0
        self.marked_pkts = 0
        self.red_marked_pkts = 0      # marks decided by physical RED
        self.phantom_marked_pkts = 0  # marks decided by the phantom queue
        self.tx_bytes = 0
        # Hot-path precomputation: link rate and RED thresholds are
        # immutable after construction, so the per-packet path reads
        # them from slots instead of recomputing frac * capacity.
        self._gbps = link.gbps
        self._red_min_th = self.red.min_frac * capacity_bytes
        self._red_max_th = self.red.max_frac * capacity_bytes
        self._red_span = self._red_max_th - self._red_min_th
        # The one perpetual serialization event: allocated on the first
        # transmission, re-armed (never re-allocated) for every later one.
        self._tx_handle = None
        # Batch-advance state. _sched holds (finish_ps, size) for packets
        # already committed to the link but whose serialization has not
        # been settled into tx_bytes/bytes_queued yet; _busy_until is the
        # last committed finish. _batch caches eligibility (None = stale,
        # recompute on next enqueue). _ser_cache memoizes size -> ser_ps
        # (flows use a handful of distinct sizes; the division is
        # measurable per packet).
        self._sched: deque = deque()
        self._busy_until = 0
        self._batch = None
        self._ser_cache: dict = {}
        link._port = self
        # PFC (lossless fabric) state. Disabled by default: the hot path
        # then costs one is-None / bool test per packet. configure_pfc()
        # arms the thresholds; ``pfc`` is the owning node's controller
        # (None on host NICs — they honor pause but never originate it).
        self.pfc = None
        self.pfc_enabled = False
        self._paused = False
        self._pause_until: Optional[int] = None
        self._pause_handle = None
        self._pause_started_ps = 0
        self.paused_time_ps = 0
        self.pause_frames_rx = 0
        self._xoff = False
        self._xoff_bytes = 0
        self._xon_bytes = 0
        # Optional callable(port, event, pkt, info): fired on "drop" and
        # "mark"; for marks ``info`` carries the decision
        # {"phys": bool, "phantom": bool} (a mark may come from both).
        self.monitor = None
        obs = sim.obs
        self._events = obs.events if obs is not None else None
        if obs is not None:
            obs.metrics.defer(self._register_metrics)
        # In-band network telemetry (for HPCC-class transports): when
        # enabled, every transmitted packet carries the max per-hop
        # utilization U = qlen/(B*T) + txRate/B along its path.
        self.int_t_ref_ps: Optional[int] = None
        self._int_win_start = 0
        self._int_win_bytes = 0
        self._int_rate = 0.0  # bytes per ps over the last window

    def _register_metrics(self, registry) -> None:
        from repro.obs.metrics import metric_key

        base = f"port.{metric_key(self.name)}"
        registry.gauge(f"{base}.enqueued_pkts", lambda: self.enqueued_pkts)
        registry.gauge(f"{base}.drops", lambda: self.drops)
        registry.gauge(f"{base}.marked_pkts", lambda: self.marked_pkts)
        registry.gauge(f"{base}.red_marked_pkts",
                       lambda: self.red_marked_pkts)
        registry.gauge(f"{base}.phantom_marked_pkts",
                       lambda: self.phantom_marked_pkts)
        registry.gauge(f"{base}.tx_bytes", lambda: self.tx_bytes)
        registry.gauge(f"{base}.queued_pkts",
                       lambda: len(self._fifo) + len(self._sched))
        registry.gauge(f"{base}.queued_bytes", lambda: self.bytes_queued)
        registry.gauge(f"{base}.pause_frames_rx", lambda: self.pause_frames_rx)
        registry.gauge(f"{base}.paused_time_ps", lambda: self.paused_time_ps)

    def enable_int(self, t_ref_ps: int) -> None:
        """Turn on INT stamping with HPCC's base-RTT reference ``T``."""
        if t_ref_ps <= 0:
            raise ValueError("INT reference time must be positive")
        if self._sched:
            # Packets not yet on the wire must be stamped at their finish
            # times (the reference path stamps in _finish_tx).
            self._rollback()
        else:
            self._batch = None
        self.int_t_ref_ps = t_ref_ps

    # -- marking ---------------------------------------------------------

    def _red_marks(self, occupancy_before: int) -> bool:
        if occupancy_before < self._red_min_th:
            return False
        if occupancy_before >= self._red_max_th:
            return True
        span = self._red_span
        p = (occupancy_before - self._red_min_th) / span if span > 0 else 1.0
        return self._rng.random() < p

    # -- wiring ----------------------------------------------------------

    def divert(self, sink: "PacketSink") -> "PacketSink":
        """Replace the downstream sink; returns the previous one.

        The sanctioned rewiring point of the handoff boundary: serialized
        packets flow to ``sink.receive`` instead of the port's link. Shard
        boundaries use it to capture cross-cut traffic at transmit time
        (so loss-model draws and telemetry on the original link are
        bypassed together — the far shard replays delivery). Normal
        topology wiring never calls this.
        """
        old = self._sink
        if self._sched:
            # Committed-but-unfinished packets re-serialize and reach the
            # NEW sink at their finish times, exactly as the reference
            # path's _finish_tx would; packets already on the wire keep
            # propagating to the link's own sink.
            self._rollback()
        else:
            self._batch = None
        self._sink = check_sink(sink, f"port {self.name}.divert")
        return old

    # -- datapath --------------------------------------------------------

    def enqueue(self, pkt: Packet) -> bool:
        """Offer a packet; returns False if it was tail-dropped."""
        now = self.sim.now
        ev = self._events
        size = pkt.size
        sched = self._sched
        if sched and sched[0][0] <= now:
            # Settle finished serializations first (loop inlined from
            # _settle — once per packet in steady state): the drop/RED/
            # phantom decisions below must see exactly the occupancy the
            # reference per-packet path would (its _finish_tx events for
            # those packets fired before this enqueue).
            bq = self.bytes_queued
            n = 0
            while sched and sched[0][0] <= now:
                bq -= sched.popleft()[1]
                n += 1
            self.tx_bytes += self.bytes_queued - bq
            self.bytes_queued = bq
            self.sim._n_executed += n
        occupancy = self.bytes_queued
        if occupancy + size > self.capacity_bytes:
            self.drops += 1
            if ev is not None and ev.wants("queue"):
                ev.emit("queue", "drop", t=now, port=self.name,
                        flow=pkt.flow_id, seq=pkt.seq, size=size,
                        queued_bytes=occupancy)
            if self.monitor is not None:
                self.monitor(self, "drop", pkt, {})
            return False
        # RNG draw order (RED first, then phantom) is load-bearing: it
        # must not depend on whether telemetry is attached. RED is
        # inlined here (thresholds precomputed at construction); the RNG
        # is drawn exactly when min_th <= occupancy < max_th, as in
        # _red_marks.
        if occupancy < self._red_min_th:
            red_marked = False
        elif occupancy >= self._red_max_th:
            red_marked = True
        else:
            span = self._red_span
            p = (occupancy - self._red_min_th) / span if span > 0 else 1.0
            red_marked = self._rng.random() < p
        phantom = self.phantom
        phantom_marked = (
            phantom.on_enqueue(size, now) if phantom is not None else False
        )
        if red_marked or phantom_marked:
            pkt.ecn = True
            self.marked_pkts += 1
            if red_marked:
                self.red_marked_pkts += 1
            if phantom_marked:
                self.phantom_marked_pkts += 1
            if ev is not None and ev.wants("queue"):
                ev.emit("queue", "mark", t=now, port=self.name,
                        flow=pkt.flow_id, seq=pkt.seq,
                        phys=red_marked, phantom=phantom_marked)
            if self.monitor is not None:
                self.monitor(self, "mark", pkt,
                             {"phys": red_marked, "phantom": phantom_marked})
        self.enqueued_pkts += 1
        if ev is not None and ev.wants("queue"):
            ev.emit("queue", "enqueue", t=now, port=self.name,
                    flow=pkt.flow_id, seq=pkt.seq, size=size)
        self.bytes_queued = occupancy + size
        batch = self._batch
        if batch is None:
            batch = self._refresh_batch()
        if batch and not self._fifo:
            # Batch-advance fast path: no decision can change between now
            # and this packet's serialization finish, so commit the
            # finish time immediately and hand the packet to the link's
            # in-flight deque — no per-packet finish callback. The finish
            # arithmetic is the same inlined ser-time as the classic path
            # below, memoized per size (bit-identical by construction).
            cache = self._ser_cache
            try:
                ser = cache[size]
            except KeyError:
                ser = round(size * 8000 / self._gbps)
                if ser < 1:
                    ser = 1
                cache[size] = ser
            start = self._busy_until
            if start < now:
                start = now
            self._busy_until = finish = start + ser
            sched.append((finish, size))
            # Link._schedule inlined (one call per packet is measurable):
            # commit straight into the link's in-flight deque and arm its
            # drain if it is dark. Must stay behavior-identical to it.
            link = self.link
            sim = self.sim
            seq = sim._seq = sim._seq + 1
            q = link._inflight
            q.append((finish + link.prop_ps, seq, pkt))
            if not link._drain_armed:
                link._drain_armed = True
                t, s, _ = q[0]
                handle = link._drain_handle
                if handle is None:
                    link._drain_handle = sim.at_seq(t, s, link._drain)
                else:
                    handle.time = t
                    handle.fired = False
                    heappush(sim._heap, (t, s, handle))
            return True
        self._fifo.append(pkt)
        if not self._busy and not self._paused:
            # (When paused, the packet stays held in the FIFO — not lost
            # — until resume() restarts the serializer; the port must
            # still fall through to the XOFF check below so a filling
            # paused queue back-pressures upstream.)
            # Idle port: the packet just appended is the head; start its
            # serialization. Same arithmetic as units.ser_time_ps,
            # inlined — it must stay bit-identical to it.
            self._busy = True
            ser = round(size * 8000 / self._gbps)
            if ser < 1:
                ser = 1
            sim = self.sim
            handle = self._tx_handle
            if handle is None:
                self._tx_handle = sim.after(ser, self._finish_tx)
            else:
                # sim.rearm(handle, now + ser) inlined: one push per
                # serialized packet makes the call overhead measurable.
                sim._seq = seq = sim._seq + 1
                handle.time = t = now + ser
                handle.fired = False
                heappush(sim._heap, (t, seq, handle))
        pfc = self.pfc
        if (pfc is not None and not self._xoff
                and self.bytes_queued >= self._xoff_bytes):
            self._xoff = True
            pfc.on_xoff(self)
        return True

    def _settle(self, now: int) -> None:
        """Retire drain-schedule entries whose serialization completed by
        ``now``: move their bytes from queued to transmitted and credit
        one engine event each (the _finish_tx callbacks the batch-advance
        absorbed). Called from every occupancy read and from the link's
        delivery drain, so observers always see reference-exact state."""
        sched = self._sched
        bq = self.bytes_queued
        n = 0
        while sched and sched[0][0] <= now:
            bq -= sched.popleft()[1]
            n += 1
        if n:
            self.tx_bytes += self.bytes_queued - bq
            self.bytes_queued = bq
            self.sim._n_executed += n

    def _refresh_batch(self) -> bool:
        """(Re)compute batch-advance eligibility. True only when nothing
        can alter a packet's fate between enqueue and serialization
        finish: coalesced clean up-link wired straight through (no
        divert), no PFC, no INT stamping, not paused."""
        link = self.link
        ok = bool(
            BATCH_DRAIN
            and link._coalesce
            and link.up
            and link._loss_model is None
            and link._sink is not None
            and self._sink is link
            and not self.pfc_enabled
            and self.pfc is None
            and self.int_t_ref_ps is None
            and not self._paused
        )
        self._batch = ok
        return ok

    def _rollback(self) -> None:
        """Leave batch mode: recall every committed packet whose
        serialization has not finished, put them back at the FIFO head in
        order, and arm the classic serializer at the (unchanged) finish
        time of the in-progress head — from here on the reference
        per-packet path runs, seeing exactly the state it would have."""
        self._batch = None
        sched = self._sched
        if sched:
            self._settle(self.sim.now)
        if not sched:
            self._busy_until = 0
            return
        head_finish = sched[0][0]
        pkts = self.link._recall(len(sched))
        fifo = self._fifo
        if fifo:
            raise RuntimeError(
                f"port {self.name}: rollback with a non-empty FIFO "
                "(batch/classic state mixed)"
            )
        fifo.extend(pkts)
        sched.clear()
        self._busy_until = 0
        self._busy = True
        sim = self.sim
        tx = self._tx_handle
        if tx is None:
            self._tx_handle = sim.at(head_finish, self._finish_tx)
        else:
            sim.rearm(tx, head_finish)

    def _finish_tx(self) -> None:
        fifo = self._fifo
        pkt = fifo.popleft()
        size = pkt.size
        self.bytes_queued -= size
        self.tx_bytes += size
        if self.int_t_ref_ps is not None:
            self._stamp_int(pkt)
        self._sink.receive(pkt)
        pfc = self.pfc
        if (pfc is not None and self._xoff
                and self.bytes_queued <= self._xon_bytes):
            self._xoff = False
            pfc.on_xon(self)
        if self._paused:
            # Packet-boundary pause semantics: the frame that was mid-
            # serialization when the PAUSE arrived completes; the next
            # head waits for resume() to re-arm the tx event.
            self._busy = False
        elif fifo:
            # Back-to-back serialization: re-arm the one tx event for the
            # next head (allocation-free; same (time, seq) the per-packet
            # schedule would draw; sim.rearm inlined as in enqueue).
            sim = self.sim
            ser = round(fifo[0].size * 8000 / self._gbps)
            if ser < 1:
                ser = 1
            sim._seq = seq = sim._seq + 1
            handle = self._tx_handle
            handle.time = t = sim.now + ser
            handle.fired = False
            heappush(sim._heap, (t, seq, handle))
        else:
            self._busy = False

    def _stamp_int(self, pkt: Packet) -> None:
        t_ref = self.int_t_ref_ps
        now = self.sim.now
        self._int_win_bytes += pkt.size
        elapsed = now - self._int_win_start
        if elapsed >= t_ref:
            self._int_rate = self._int_win_bytes / elapsed
            self._int_win_start = now
            self._int_win_bytes = 0
        line_bytes_per_ps = gbps_to_bytes_per_ps(self.link.gbps)
        util = (
            self.bytes_queued / (line_bytes_per_ps * t_ref)
            + self._int_rate / line_bytes_per_ps
        )
        if util > pkt.int_util:
            pkt.int_util = util

    # -- PFC pause/resume ------------------------------------------------

    def configure_pfc(self, xoff_frac: float, xon_frac: float,
                      controller=None) -> None:
        """Arm PFC on this port.

        The port then honors PAUSE/RESUME frames (freezing its drain at
        packet boundaries), and — when ``controller`` is a node's
        :class:`~repro.sim.pfc.PFCController` — originates XOFF when the
        queue crosses ``xoff_frac`` of capacity and XON when it drains
        back below ``xon_frac``. Host NICs pass ``controller=None``:
        they obey pause but never ask anyone else to stop.
        """
        if not 0.0 < xon_frac <= xoff_frac <= 1.0:
            raise ValueError(
                f"invalid PFC thresholds: xon={xon_frac} xoff={xoff_frac} "
                "(need 0 < xon <= xoff <= 1)"
            )
        if self._sched:
            # Pause boundaries must be honored per packet from here on.
            self._rollback()
        else:
            self._batch = None
        self.pfc_enabled = True
        self._xoff_bytes = xoff_frac * self.capacity_bytes
        self._xon_bytes = xon_frac * self.capacity_bytes
        self.pfc = controller

    @property
    def paused(self) -> bool:
        return self._paused

    @property
    def pause_started_ps(self) -> int:
        """When the current pause began (meaningful only while paused)."""
        return self._pause_started_ps

    def total_paused_ps(self, now_ps: Optional[int] = None) -> int:
        """Accumulated paused time, including any still-open pause."""
        total = self.paused_time_ps
        if self._paused:
            now = self.sim.now if now_ps is None else now_ps
            total += now - self._pause_started_ps
        return total

    def pause(self, hold_ps: int = 0) -> None:
        """Honor a PFC PAUSE frame.

        Freezes the serializer at the next packet boundary (the frame
        currently on the wire finishes, as real PFC lets the in-progress
        frame complete). ``hold_ps > 0`` auto-resumes after that quantum
        unless refreshed; ``hold_ps == 0`` pauses until an explicit
        RESUME, and outranks any pending timed hold. Ports without
        ``pfc_enabled`` (a lossy fabric under a pause storm) count the
        frame and ignore it.
        """
        self.pause_frames_rx += 1
        if not self.pfc_enabled:
            return
        sim = self.sim
        now = sim.now
        was_paused = self._paused
        if not was_paused:
            self._paused = True
            self._pause_started_ps = now
            ev = self._events
            if ev is not None and ev.wants("pfc"):
                ev.emit("pfc", "pause", t=now, port=self.name,
                        queued_bytes=self.bytes_queued)
        if hold_ps > 0:
            if was_paused and self._pause_until is None:
                return  # indefinitely paused; a quantum can't shorten it
            until = now + hold_ps
            if self._pause_until is None or until > self._pause_until:
                self._pause_until = until
                if self._pause_handle is None:
                    self._pause_handle = sim.at(until, self._pause_expire)
                # else: the armed check fires earlier and re-schedules.
        else:
            self._pause_until = None
            handle = self._pause_handle
            if handle is not None:
                handle.cancel()
                self._pause_handle = None

    def _pause_expire(self) -> None:
        self._pause_handle = None
        until = self._pause_until
        if not self._paused or until is None:
            return
        if self.sim.now >= until:
            self.resume()
        else:
            # The hold was extended after this check was armed.
            self._pause_handle = self.sim.at(until, self._pause_expire)

    def resume(self) -> None:
        """Release a pause (explicit RESUME frame or quantum expiry) and
        restart the frozen serializer if packets are waiting."""
        if not self._paused:
            return
        sim = self.sim
        now = sim.now
        self._paused = False
        self._pause_until = None
        handle = self._pause_handle
        if handle is not None:
            handle.cancel()
            self._pause_handle = None
        self.paused_time_ps += now - self._pause_started_ps
        ev = self._events
        if ev is not None and ev.wants("pfc"):
            ev.emit("pfc", "resume", t=now, t0=self._pause_started_ps,
                    port=self.name, queued_bytes=self.bytes_queued)
        fifo = self._fifo
        if fifo and not self._busy:
            # Re-arm the one perpetual tx event for the held head packet
            # (same inlined ser-time arithmetic as enqueue/_finish_tx).
            self._busy = True
            ser = round(fifo[0].size * 8000 / self._gbps)
            if ser < 1:
                ser = 1
            tx = self._tx_handle
            if tx is None:
                self._tx_handle = sim.after(ser, self._finish_tx)
            else:
                sim._seq = seq = sim._seq + 1
                tx.time = t = now + ser
                tx.fired = False
                heappush(sim._heap, (t, seq, tx))
        # A queue already above XOFF when the pause lifts must pause
        # upstream now, not on the next enqueue: it drains at line rate
        # while neighbors would otherwise keep transmitting into it.
        pfc = self.pfc
        if (pfc is not None and not self._xoff
                and self.bytes_queued >= self._xoff_bytes):
            self._xoff = True
            pfc.on_xoff(self)

    # PacketSink conformance: handing a packet to a port means offering
    # it to the egress queue (upstream callers ignore the drop bool).
    receive = enqueue

    # -- introspection ---------------------------------------------------

    def occupancy_bytes(self) -> int:
        if self._sched:
            self._settle(self.sim.now)
        return self.bytes_queued

    def phantom_occupancy(self) -> float:
        if self.phantom is None:
            return 0.0
        return self.phantom.occupancy_at(self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Port {self.name} q={self.bytes_queued}B drops={self.drops}>"
