"""The narrow cross-component packet-handoff boundary.

Every hop a packet takes between components — host NIC to port, port to
link, link to peer node, switch to egress port — goes through exactly one
method: ``sink.receive(pkt)``. :class:`PacketSink` is that protocol, and
the only sanctioned cross-component handoff surface in the simulator:

- :meth:`repro.sim.host.Host.receive` (endpoint dispatch),
- :meth:`repro.sim.switch.Switch.receive` (forwarding),
- :meth:`repro.sim.queues.Port.receive` (enqueue + serialization),
- :meth:`repro.sim.link.Link.receive` (propagation + loss),
- :class:`repro.sim.shard.ShardBoundary` egress proxies (cross-shard
  batching).

Wiring is explicit: a :class:`~repro.sim.link.Link` is connected to its
delivery sink exactly once via :meth:`~repro.sim.link.Link.connect`
(double-wiring and unwired use raise :class:`WiringError` instead of
failing with ``AttributeError`` mid-run), and a
:class:`~repro.sim.queues.Port`'s downstream sink defaults to its link
but can be rerouted through :meth:`~repro.sim.queues.Port.divert` — the
hook shard boundaries (and any future datapath backend) plug into.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.packet import Packet


class WiringError(RuntimeError):
    """A packet sink was wired twice, left unwired, or is not a sink."""


@runtime_checkable
class PacketSink(Protocol):
    """Anything that can accept a packet handed off by another component.

    The single cross-component handoff surface: hosts, switches, ports,
    links, and shard boundaries all implement it. ``receive`` may consume,
    forward, queue, drop, or serialize the packet; the caller relinquishes
    ownership on call. The return value is unspecified (``Port.receive``
    reports tail drops with a bool; other sinks return ``None``) — callers
    wanting backpressure must know their sink is a port.
    """

    def receive(self, pkt: "Packet") -> Any:
        """Accept ``pkt``; ownership transfers to the sink."""
        ...


def check_sink(sink: Any, wirer: str) -> Any:
    """Validate that ``sink`` quacks like a :class:`PacketSink`.

    Raises :class:`WiringError` naming the offending ``wirer`` otherwise;
    returns the sink so wiring call sites can validate inline.
    """
    if sink is None or not callable(getattr(sink, "receive", None)):
        raise WiringError(f"{wirer}: {sink!r} is not a PacketSink")
    return sink


__all__ = ["PacketSink", "WiringError", "check_sink"]
