"""Packet-level discrete-event network simulator (the htsim substitute).

The subpackage is organized bottom-up:

- :mod:`repro.sim.units`    -- time/bandwidth/size conversions (integer picoseconds).
- :mod:`repro.sim.engine`   -- the event loop and cancellable timers.
- :mod:`repro.sim.packet`   -- slotted packet records.
- :mod:`repro.sim.queues`   -- drop-tail queues, RED ECN marking, phantom queues.
- :mod:`repro.sim.link`     -- serialization + propagation, failures, loss models.
- :mod:`repro.sim.switch`   -- next-hop forwarding with ECMP / packet spraying.
- :mod:`repro.sim.host`     -- end hosts and the per-flow endpoint registry.
- :mod:`repro.sim.network`  -- wiring, route computation, top-level container.
- :mod:`repro.sim.trace`    -- monitors (queue occupancy, flow rates, drops).
- :mod:`repro.sim.failures` -- link failure schedules and correlated loss models.
- :mod:`repro.sim.boundary` -- the PacketSink cross-component handoff protocol.
- :mod:`repro.sim.shard`    -- shard boundaries + conservative parallel sync.
- :mod:`repro.sim.pfc`      -- lossless-fabric PFC + CBD deadlock watchdog.
"""

from repro.sim.boundary import PacketSink, WiringError
from repro.sim.engine import Simulator, EventHandle
from repro.sim.shard import ShardBoundary
from repro.sim.packet import Packet, DATA, ACK, NACK
from repro.sim.units import (
    NS,
    US,
    MS,
    SEC,
    KIB,
    MIB,
    GIB,
    ser_time_ps,
    bdp_bytes,
    gbps_to_bytes_per_ps,
)
from repro.sim.network import Network
from repro.sim.link import Link
from repro.sim.queues import Port, REDConfig, PhantomQueueConfig
from repro.sim.switch import Switch
from repro.sim.host import Host
from repro.sim.pfc import (
    DeadlockWatchdog,
    PFCConfig,
    PFCController,
    enable_pfc,
)

__all__ = [
    "PacketSink",
    "WiringError",
    "ShardBoundary",
    "Simulator",
    "EventHandle",
    "Packet",
    "DATA",
    "ACK",
    "NACK",
    "NS",
    "US",
    "MS",
    "SEC",
    "KIB",
    "MIB",
    "GIB",
    "ser_time_ps",
    "bdp_bytes",
    "gbps_to_bytes_per_ps",
    "Network",
    "Link",
    "Port",
    "REDConfig",
    "PhantomQueueConfig",
    "Switch",
    "Host",
    "DeadlockWatchdog",
    "PFCConfig",
    "PFCController",
    "enable_pfc",
]
