"""Network container: nodes, links, route computation, and failure-aware
route maintenance.

The :class:`Network` owns the simulator's node/link inventory, wires
bidirectional links as pairs of unidirectional (Link, Port) couples, and
precomputes next-hop tables at every switch with a breadth-first search
per destination host. All equal-cost shortest-path next-hops are kept, so
ECMP/spraying at every switch sees the full fan-out; **parallel links**
between the same pair of nodes (the paper's eight border links) appear as
multiple equal-cost ports and are load-balanced like any other multipath.

Ports at each node are keyed by ``(neighbor_id, index)`` where ``index``
counts parallel links to that neighbor.

**Failure-aware routing.** Every link notifies the network when it is
failed or restored. After a configurable control-plane convergence delay
(``convergence_delay_ps``, default :data:`DEFAULT_CONVERGENCE_DELAY_PS`
= 10 ms) the network patches its next-hop tables: ports feeding down
links are removed from every switch's equal-cost set (incrementally —
with a BFS recompute when a destination loses all next-hops at some
switch), and restored ports are re-admitted with a full recompute. Two
sentinel delays disable the mechanism: ``0`` keeps the pre-failure
static tables (routes are built once and never touched, the historical
behavior) and ``float("inf")`` models a control plane that never
converges — both blackhole traffic hashed onto a dead link until it is
repaired. A destination that a switch knows but cannot currently reach
keeps an *empty* next-hop set; the switch drops such packets (counted as
``no_route_drops``) instead of crashing the simulation mid-partition.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Dict, List, Optional, Tuple, Union

from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.link import Link
from repro.sim.queues import PhantomQueueConfig, Port, REDConfig
from repro.sim.switch import Switch
from repro.sim.units import MS

Node = Union[Host, Switch]
PortKey = Tuple[int, int]  # (neighbor node id, parallel index)

# Control-plane convergence delay between a link state change and the
# corresponding next-hop table patch. ~10 ms is the scale of BGP/IGP
# fast-reroute convergence on a WAN; experiments that need the historical
# static tables pass 0, and `inf` models a control plane that never
# reacts (the blackhole control in failure studies).
DEFAULT_CONVERGENCE_DELAY_PS = 10 * MS


class Network:
    """Owns nodes and links; wires ports and computes next-hop tables."""
    def __init__(
        self,
        sim: Simulator,
        seed: int = 1,
        convergence_delay_ps: float = DEFAULT_CONVERGENCE_DELAY_PS,
    ):
        if convergence_delay_ps < 0:
            raise ValueError(
                f"negative convergence delay: {convergence_delay_ps}"
            )
        self.sim = sim
        self.nodes: List[Node] = []
        self.hosts: List[Host] = []
        self.switches: List[Switch] = []
        self.links: List[Link] = []
        self._by_name: Dict[str, Node] = {}
        # adjacency: node id -> list of (neighbor id, port key)
        self._adj: Dict[int, List[Tuple[int, PortKey]]] = {}
        self._rng = random.Random(seed)
        self._routes_built = False
        self.convergence_delay_ps = convergence_delay_ps
        self.route_patches = 0    # incremental port removals applied
        self.route_rebuilds = 0   # full BFS recomputes triggered by failures
        # Links (by id) currently excluded from the next-hop tables;
        # reconciles compare this against live link state.
        self._down_patched: set = set()
        # Fire time of the latest scheduled reconcile: transitions at one
        # instant (a node failing all its cables) coalesce into a single
        # convergence event instead of N redundant ones.
        self._converge_at = -1

    # -- construction ------------------------------------------------------

    def _register(self, node: Node) -> None:
        if node.name in self._by_name:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes.append(node)
        self._by_name[node.name] = node
        self._adj[node.node_id] = []

    def add_host(self, name: str, dc: int = 0) -> Host:
        host = Host(self.sim, node_id=len(self.nodes), name=name, dc=dc)
        self._register(host)
        self.hosts.append(host)
        return host

    def add_switch(self, name: str, mode: str = "ecmp") -> Switch:
        node_id = len(self.nodes)
        switch = Switch(
            self.sim,
            node_id=node_id,
            name=name,
            mode=mode,
            salt=self._rng.getrandbits(63),
            rng=random.Random(self._rng.getrandbits(63)),
        )
        self._register(switch)
        self.switches.append(switch)
        return switch

    def _parallel_index(self, a: Node, b: Node) -> int:
        return sum(1 for (nid, _idx) in a.ports if nid == b.node_id)

    def add_link(
        self,
        a: Node,
        b: Node,
        gbps: float,
        prop_ps: int,
        queue_bytes: int,
        red: Optional[REDConfig] = None,
        phantom: Optional[PhantomQueueConfig] = None,
        queue_bytes_ba: Optional[int] = None,
        red_ba: Optional[REDConfig] = None,
        phantom_ba: Optional[PhantomQueueConfig] = None,
        asymmetric_marking: bool = False,
    ) -> tuple[Link, Link]:
        """Add a bidirectional link between ``a`` and ``b``.

        Creates two unidirectional links with identical bandwidth and
        propagation delay, each fed by an egress Port at its sending node.
        The ``*_ba`` parameters override the b->a direction's queue size
        and marking (used for host uplinks, whose NIC side never marks,
        and for asymmetric intra/inter buffer experiments); they default
        to the a->b settings unless ``asymmetric_marking`` is set, in
        which case ``red_ba``/``phantom_ba`` are taken as given (possibly
        None). Multiple calls for the same (a, b) create parallel links.
        Returns (a->b, b->a).
        """
        if not asymmetric_marking:
            red_ba = red if red_ba is None else red_ba
            phantom_ba = phantom if phantom_ba is None else phantom_ba
        self._routes_built = False
        idx = self._parallel_index(a, b)
        suffix = f"#{idx}" if idx else ""
        link_ab = Link(self.sim, gbps, prop_ps, name=f"{a.name}->{b.name}{suffix}")
        link_ba = Link(self.sim, gbps, prop_ps, name=f"{b.name}->{a.name}{suffix}")
        link_ab.src = a
        link_ab.connect(b)
        link_ba.src = b
        link_ba.connect(a)
        # Both directions of the cable belong to both endpoints' failure
        # domains: either node crashing takes the whole cable down.
        a.attached_links.extend((link_ab, link_ba))
        b.attached_links.extend((link_ab, link_ba))
        port_ab = Port(
            self.sim,
            link_ab,
            capacity_bytes=queue_bytes,
            red=red,
            phantom=phantom,
            rng=random.Random(self._rng.getrandbits(63)),
        )
        port_ba = Port(
            self.sim,
            link_ba,
            capacity_bytes=(
                queue_bytes if queue_bytes_ba is None else queue_bytes_ba
            ),
            red=red_ba,
            phantom=phantom_ba,
            rng=random.Random(self._rng.getrandbits(63)),
        )
        key_ab: PortKey = (b.node_id, idx)
        key_ba: PortKey = (a.node_id, idx)
        a.ports[key_ab] = port_ab
        b.ports[key_ba] = port_ba
        self._adj[a.node_id].append((b.node_id, key_ab))
        self._adj[b.node_id].append((a.node_id, key_ba))
        link_ab.on_state_change = self._on_link_state
        link_ba.on_state_change = self._on_link_state
        self.links.extend((link_ab, link_ba))
        return link_ab, link_ba

    # -- lookup --------------------------------------------------------------

    def node(self, name: str) -> Node:
        return self._by_name[name]

    def ports_between(self, a: Node, b: Node) -> List[Port]:
        """All egress ports at ``a`` feeding links toward ``b``."""
        return [
            a.ports[key]
            for key in sorted(k for k in a.ports if k[0] == b.node_id)
        ]

    def port_between(self, a: Node, b: Node, index: int = 0) -> Port:
        ports = self.ports_between(a, b)
        if not ports:
            raise LookupError(f"no link {a.name}->{b.name}")
        return ports[index]

    def link_between(self, a: Node, b: Node, index: int = 0) -> Link:
        """The index-th a->b unidirectional link."""
        return self.port_between(a, b, index).link

    # -- routing ---------------------------------------------------------------

    def build_routes(self) -> None:
        """Precompute equal-cost next-hop port tables at every switch.

        For each destination host, BFS from the host over the (symmetric)
        adjacency gives hop distances; every switch then points at all
        ports toward neighbors one hop closer to the destination —
        including all parallel links to such a neighbor. Down links are
        not usable hops, so a build with every link up is identical to a
        failure-oblivious one, while a rebuild after a failure routes
        around it (possibly via longer paths).
        """
        id_to_node = {n.node_id: n for n in self.nodes}
        for sw in self.switches:
            sw.nexthops = {}
        for host in self.hosts:
            dist = {host.node_id: 0}
            frontier = deque([host.node_id])
            while frontier:
                u = frontier.popleft()
                du = dist[u]
                for v, key in self._adj[u]:
                    if v not in dist:
                        node_v = id_to_node[v]
                        # Hosts never forward transit traffic.
                        if isinstance(node_v, Host):
                            continue
                        # A down switch forwards nothing. Its links are
                        # normally all down too; this guards the case of
                        # a cable independently restored into a dead node.
                        if not node_v.up:
                            continue
                        # Forwarding toward the destination traverses the
                        # v->u link (parallel cables share the index, so
                        # a later adjacency entry retries this neighbor).
                        if not node_v.ports[(u, key[1])].link.up:
                            continue
                        dist[v] = du + 1
                        frontier.append(v)
            for sw in self.switches:
                d = dist.get(sw.node_id)
                if d is None:
                    continue
                ports = tuple(
                    sw.ports[key]
                    for v, key in self._adj[sw.node_id]
                    if dist.get(v, -1) == d - 1 and sw.ports[key].link.up
                )
                if ports:
                    sw.nexthops[host.node_id] = ports
        self._routes_built = True

    def ensure_routes(self) -> None:
        if not self._routes_built:
            self.build_routes()

    # -- failure-aware route maintenance ------------------------------------

    def _on_link_state(self, link: Link) -> None:
        """Link up/down callback: schedule a table reconcile after the
        control-plane convergence delay. Delay 0 (static tables) and inf
        (a control plane that never converges) both skip scheduling, as
        does a transition before the first route build."""
        delay = self.convergence_delay_ps
        if not self._routes_built or delay == 0 or math.isinf(delay):
            return
        fire = self.sim.now + int(delay)
        if fire == self._converge_at:
            # Another transition at this same instant already scheduled
            # the reconcile (e.g. a node failure cutting N cables at
            # once): one convergence event covers them all, because
            # _converge reconciles against *live* link state.
            return
        self._converge_at = fire
        self.sim.at(fire, self._converge)

    def _converge(self) -> None:
        """Reconcile next-hop tables with the links' *current* state.

        Fired one convergence delay after each transition, so the
        triggering link may have flapped again meanwhile; reconciling
        against live state (rather than replaying the transition) keeps
        overlapping updates convergent in any order. A link restored
        from a patched-out state forces a full BFS recompute (incremental
        patching cannot re-rank paths); pure failures are patched
        incrementally unless some destination loses its last next-hop.
        """
        if not self._routes_built:
            return
        down_now = {id(ln) for ln in self.links if not ln.up}
        patched = self._down_patched
        if patched - down_now:
            # Something we removed from the tables came back up.
            self._rebuild_routes()
            self._down_patched = down_now
            return
        fresh = down_now - patched
        if not fresh:
            return  # an earlier reconcile already covered this transition
        removed = 0
        emptied = False
        for sw in self.switches:
            for dst, ports in sw.nexthops.items():
                if any(id(p.link) in fresh for p in ports):
                    kept = tuple(p for p in ports if id(p.link) not in fresh)
                    sw.nexthops[dst] = kept
                    removed += len(ports) - len(kept)
                    if not kept:
                        emptied = True
        self._down_patched = down_now
        if emptied:
            # Some destination lost its whole equal-cost set; recompute
            # to pick up any longer detour that still exists.
            self._rebuild_routes()
            return
        self.route_patches += 1
        obs = self.sim.obs
        if obs is not None:
            obs.metrics.counter("routing.patches").inc()
            obs.metrics.counter("routing.ports_removed").inc(removed)
            ev = obs.events
            if ev is not None and ev.wants("route"):
                ev.emit("route", "patch", t=self.sim.now,
                        ports_removed=removed)

    def _rebuild_routes(self) -> None:
        """Full up-aware BFS recompute that preserves the distinction
        between a destination a switch never knew (lookup error) and one
        it knows but currently cannot reach (empty set -> counted drop)."""
        known = {sw.node_id: tuple(sw.nexthops) for sw in self.switches}
        self.build_routes()
        for sw in self.switches:
            for dst in known[sw.node_id]:
                if dst not in sw.nexthops:
                    sw.nexthops[dst] = ()
        self.route_rebuilds += 1
        obs = self.sim.obs
        if obs is not None:
            obs.metrics.counter("routing.rebuilds").inc()
            ev = obs.events
            if ev is not None and ev.wants("route"):
                ev.emit("route", "rebuild", t=self.sim.now,
                        rebuilds=self.route_rebuilds)

    def total_drops(self) -> int:
        drops = 0
        for node in self.nodes:
            for port in node.ports.values():
                drops += port.drops
        return drops

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Network hosts={len(self.hosts)} switches={len(self.switches)} "
            f"links={len(self.links)}>"
        )
