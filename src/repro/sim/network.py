"""Network container: nodes, links, and route computation.

The :class:`Network` owns the simulator's node/link inventory, wires
bidirectional links as pairs of unidirectional (Link, Port) couples, and
precomputes next-hop tables at every switch with a breadth-first search
per destination host. All equal-cost shortest-path next-hops are kept, so
ECMP/spraying at every switch sees the full fan-out; **parallel links**
between the same pair of nodes (the paper's eight border links) appear as
multiple equal-cost ports and are load-balanced like any other multipath.

Ports at each node are keyed by ``(neighbor_id, index)`` where ``index``
counts parallel links to that neighbor.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Optional, Tuple, Union

from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.link import Link
from repro.sim.queues import PhantomQueueConfig, Port, REDConfig
from repro.sim.switch import Switch

Node = Union[Host, Switch]
PortKey = Tuple[int, int]  # (neighbor node id, parallel index)


class Network:
    """Owns nodes and links; wires ports and computes next-hop tables."""
    def __init__(self, sim: Simulator, seed: int = 1):
        self.sim = sim
        self.nodes: List[Node] = []
        self.hosts: List[Host] = []
        self.switches: List[Switch] = []
        self.links: List[Link] = []
        self._by_name: Dict[str, Node] = {}
        # adjacency: node id -> list of (neighbor id, port key)
        self._adj: Dict[int, List[Tuple[int, PortKey]]] = {}
        self._rng = random.Random(seed)
        self._routes_built = False

    # -- construction ------------------------------------------------------

    def _register(self, node: Node) -> None:
        if node.name in self._by_name:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes.append(node)
        self._by_name[node.name] = node
        self._adj[node.node_id] = []

    def add_host(self, name: str, dc: int = 0) -> Host:
        host = Host(self.sim, node_id=len(self.nodes), name=name, dc=dc)
        self._register(host)
        self.hosts.append(host)
        return host

    def add_switch(self, name: str, mode: str = "ecmp") -> Switch:
        node_id = len(self.nodes)
        switch = Switch(
            self.sim,
            node_id=node_id,
            name=name,
            mode=mode,
            salt=self._rng.getrandbits(63),
            rng=random.Random(self._rng.getrandbits(63)),
        )
        self._register(switch)
        self.switches.append(switch)
        return switch

    def _parallel_index(self, a: Node, b: Node) -> int:
        return sum(1 for (nid, _idx) in a.ports if nid == b.node_id)

    def add_link(
        self,
        a: Node,
        b: Node,
        gbps: float,
        prop_ps: int,
        queue_bytes: int,
        red: Optional[REDConfig] = None,
        phantom: Optional[PhantomQueueConfig] = None,
        queue_bytes_ba: Optional[int] = None,
        red_ba: Optional[REDConfig] = None,
        phantom_ba: Optional[PhantomQueueConfig] = None,
        asymmetric_marking: bool = False,
    ) -> tuple[Link, Link]:
        """Add a bidirectional link between ``a`` and ``b``.

        Creates two unidirectional links with identical bandwidth and
        propagation delay, each fed by an egress Port at its sending node.
        The ``*_ba`` parameters override the b->a direction's queue size
        and marking (used for host uplinks, whose NIC side never marks,
        and for asymmetric intra/inter buffer experiments); they default
        to the a->b settings unless ``asymmetric_marking`` is set, in
        which case ``red_ba``/``phantom_ba`` are taken as given (possibly
        None). Multiple calls for the same (a, b) create parallel links.
        Returns (a->b, b->a).
        """
        if not asymmetric_marking:
            red_ba = red if red_ba is None else red_ba
            phantom_ba = phantom if phantom_ba is None else phantom_ba
        self._routes_built = False
        idx = self._parallel_index(a, b)
        suffix = f"#{idx}" if idx else ""
        link_ab = Link(self.sim, gbps, prop_ps, name=f"{a.name}->{b.name}{suffix}")
        link_ba = Link(self.sim, gbps, prop_ps, name=f"{b.name}->{a.name}{suffix}")
        link_ab.dst = b
        link_ba.dst = a
        port_ab = Port(
            self.sim,
            link_ab,
            capacity_bytes=queue_bytes,
            red=red,
            phantom=phantom,
            rng=random.Random(self._rng.getrandbits(63)),
        )
        port_ba = Port(
            self.sim,
            link_ba,
            capacity_bytes=(
                queue_bytes if queue_bytes_ba is None else queue_bytes_ba
            ),
            red=red_ba,
            phantom=phantom_ba,
            rng=random.Random(self._rng.getrandbits(63)),
        )
        key_ab: PortKey = (b.node_id, idx)
        key_ba: PortKey = (a.node_id, idx)
        a.ports[key_ab] = port_ab
        b.ports[key_ba] = port_ba
        self._adj[a.node_id].append((b.node_id, key_ab))
        self._adj[b.node_id].append((a.node_id, key_ba))
        self.links.extend((link_ab, link_ba))
        return link_ab, link_ba

    # -- lookup --------------------------------------------------------------

    def node(self, name: str) -> Node:
        return self._by_name[name]

    def ports_between(self, a: Node, b: Node) -> List[Port]:
        """All egress ports at ``a`` feeding links toward ``b``."""
        return [
            a.ports[key]
            for key in sorted(k for k in a.ports if k[0] == b.node_id)
        ]

    def port_between(self, a: Node, b: Node, index: int = 0) -> Port:
        ports = self.ports_between(a, b)
        if not ports:
            raise LookupError(f"no link {a.name}->{b.name}")
        return ports[index]

    def link_between(self, a: Node, b: Node, index: int = 0) -> Link:
        """The index-th a->b unidirectional link."""
        return self.port_between(a, b, index).link

    # -- routing ---------------------------------------------------------------

    def build_routes(self) -> None:
        """Precompute equal-cost next-hop port tables at every switch.

        For each destination host, BFS from the host over the (symmetric)
        adjacency gives hop distances; every switch then points at all
        ports toward neighbors one hop closer to the destination —
        including all parallel links to such a neighbor.
        """
        id_to_node = {n.node_id: n for n in self.nodes}
        for sw in self.switches:
            sw.nexthops = {}
        for host in self.hosts:
            dist = {host.node_id: 0}
            frontier = deque([host.node_id])
            while frontier:
                u = frontier.popleft()
                du = dist[u]
                for v, _key in self._adj[u]:
                    if v not in dist:
                        # Hosts never forward transit traffic.
                        if isinstance(id_to_node[v], Host):
                            continue
                        dist[v] = du + 1
                        frontier.append(v)
            for sw in self.switches:
                d = dist.get(sw.node_id)
                if d is None:
                    continue
                ports = tuple(
                    sw.ports[key]
                    for v, key in self._adj[sw.node_id]
                    if dist.get(v, -1) == d - 1
                )
                if ports:
                    sw.nexthops[host.node_id] = ports
        self._routes_built = True

    def ensure_routes(self) -> None:
        if not self._routes_built:
            self.build_routes()

    def total_drops(self) -> int:
        drops = 0
        for node in self.nodes:
            for port in node.ports.values():
                drops += port.drops
        return drops

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Network hosts={len(self.hosts)} switches={len(self.switches)} "
            f"links={len(self.links)}>"
        )
