"""Units and conversions.

All simulation time is kept in **integer picoseconds** so that packet
serialization times at typical datacenter rates are exact (a 4096 B packet
at 100 Gbps serializes in exactly 327,680 ps) and event ordering is
deterministic. Bandwidth is expressed in Gbps (decimal, 1 Gbps = 1e9 bit/s)
which matches how the paper quotes link speeds.
"""

from __future__ import annotations

# Time units, expressed in picoseconds.
PS = 1
NS = 1_000
US = 1_000_000
MS = 1_000_000_000
SEC = 1_000_000_000_000

# Size units, in bytes (binary, as used by the paper for message sizes).
KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


def ser_time_ps(nbytes: int, gbps: float) -> int:
    """Serialization (transmission) time of ``nbytes`` at ``gbps``.

    1 bit at G Gbps takes 1000/G ps, so ``nbytes`` take 8000*nbytes/G ps.
    Rounded to the nearest picosecond; exact for common rates.
    """
    if gbps <= 0:
        raise ValueError(f"bandwidth must be positive, got {gbps}")
    return max(1, round(nbytes * 8000 / gbps))


def gbps_to_bytes_per_ps(gbps: float) -> float:
    """Bandwidth in bytes per picosecond (useful for drain-rate math)."""
    return gbps * 1e9 / 8 / 1e12


def bytes_in_time(time_ps: int, gbps: float) -> float:
    """How many bytes a ``gbps`` link moves in ``time_ps`` picoseconds."""
    return time_ps * gbps_to_bytes_per_ps(gbps)


def bdp_bytes(rtt_ps: int, gbps: float) -> int:
    """Bandwidth-delay product in bytes for a path of ``rtt_ps`` at ``gbps``."""
    return int(rtt_ps * gbps_to_bytes_per_ps(gbps))


def fmt_time(ps: int) -> str:
    """Human-readable time for logs and reports."""
    if ps >= SEC:
        return f"{ps / SEC:.3f}s"
    if ps >= MS:
        return f"{ps / MS:.3f}ms"
    if ps >= US:
        return f"{ps / US:.3f}us"
    if ps >= NS:
        return f"{ps / NS:.1f}ns"
    return f"{ps}ps"


def fmt_bytes(n: float) -> str:
    """Human-readable byte size for logs and reports."""
    if n >= GIB:
        return f"{n / GIB:.2f}GiB"
    if n >= MIB:
        return f"{n / MIB:.2f}MiB"
    if n >= KIB:
        return f"{n / KIB:.2f}KiB"
    return f"{int(n)}B"
