"""Unidirectional links: propagation delay, failures, and loss models.

A :class:`Link` receives fully-serialized packets from its :class:`Port`
and delivers them to the peer node after the propagation delay. Links can
be administratively failed (dropping everything in flight and arriving,
as a fiber cut would) and can carry a stochastic loss model such as the
Gilbert-Elliott process used to reproduce the paper's Table 1.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

# A loss model maps (packet, now_ps) -> True when the packet is lost.
LossModel = Callable[[Packet, int], bool]


class Link:
    """One direction of a cable: propagation delay, failure state, loss model."""
    __slots__ = (
        "sim",
        "name",
        "gbps",
        "prop_ps",
        "src",
        "dst",
        "up",
        "loss_model",
        "delivered_pkts",
        "lost_pkts",
        "failed_drops",
        "failures",
        "on_state_change",
        "_obs",
        "_events",
    )

    def __init__(
        self,
        sim: "Simulator",
        gbps: float,
        prop_ps: int,
        name: str = "",
    ):
        if gbps <= 0:
            raise ValueError(f"link bandwidth must be positive, got {gbps}")
        if prop_ps < 0:
            raise ValueError(f"negative propagation delay: {prop_ps}")
        self.sim = sim
        self.name = name
        self.gbps = gbps
        self.prop_ps = prop_ps
        self.src = None  # sending node; wired by Network (node failure domains)
        self.dst = None  # node with .receive(pkt); wired by Network
        self.up = True
        # Called with this link after every up/down transition; the
        # owning Network uses it to patch next-hop tables (failure-aware
        # routing). None outside a Network (unit tests, raw links).
        self.on_state_change: Optional[Callable[["Link"], None]] = None
        self.loss_model: Optional[LossModel] = None
        self.delivered_pkts = 0
        self.lost_pkts = 0
        self.failed_drops = 0
        self.failures = 0  # administrative fail() transitions
        self._obs = sim.obs
        self._events = self._obs.events if self._obs is not None else None
        if self._obs is not None:
            self._register_metrics(self._obs.metrics)

    def _register_metrics(self, registry) -> None:
        from repro.obs.metrics import metric_key

        base = f"link.{metric_key(self.name)}"
        registry.gauge(f"{base}.delivered_pkts", lambda: self.delivered_pkts)
        registry.gauge(f"{base}.lost_pkts", lambda: self.lost_pkts)
        registry.gauge(f"{base}.failed_drops", lambda: self.failed_drops)
        registry.gauge(f"{base}.failures", lambda: self.failures)
        registry.gauge(f"{base}.up", lambda: self.up)

    def transmit(self, pkt: Packet) -> None:
        """Called by the port when serialization completes."""
        if not self.up:
            self.failed_drops += 1
            return
        if self.loss_model is not None and self.loss_model(pkt, self.sim.now):
            self.lost_pkts += 1
            ev = self._events
            if ev is not None and ev.wants("failure"):
                ev.emit("failure", "pkt_loss", t=self.sim.now,
                        link=self.name, flow=pkt.flow_id, seq=pkt.seq)
            return
        self.sim.after(self.prop_ps, self._deliver, pkt)

    def _deliver(self, pkt: Packet) -> None:
        # A failure while the packet was in flight also kills it.
        if not self.up:
            self.failed_drops += 1
            return
        self.delivered_pkts += 1
        self.dst.receive(pkt)

    def fail(self) -> None:
        """Administratively fail the link. Idempotent: failing a link
        that is already down neither counts a second failure nor
        notifies the control plane again."""
        if not self.up:
            return
        self.up = False
        self.failures += 1
        obs = self._obs
        if obs is not None:
            obs.metrics.counter("failures.link_down").inc()
            ev = obs.events
            if ev is not None and ev.wants("failure"):
                ev.emit("failure", "link_down", t=self.sim.now,
                        link=self.name)
        if self.on_state_change is not None:
            self.on_state_change(self)

    def restore(self) -> None:
        """Bring the link back up. Idempotent like :meth:`fail`."""
        if self.up:
            return
        self.up = True
        obs = self._obs
        if obs is not None:
            obs.metrics.counter("failures.link_up").inc()
            ev = obs.events
            if ev is not None and ev.wants("failure"):
                ev.emit("failure", "link_up", t=self.sim.now, link=self.name)
        if self.on_state_change is not None:
            self.on_state_change(self)

    def __repr__(self) -> str:  # pragma: no cover
        state = "up" if self.up else "DOWN"
        return f"<Link {self.name} {self.gbps}Gbps prop={self.prop_ps}ps {state}>"
