"""Unidirectional links: propagation delay, failures, and loss models.

A :class:`Link` receives fully-serialized packets from its :class:`Port`
and delivers them to the peer node after the propagation delay. Links can
be administratively failed (dropping everything in flight and arriving,
as a fiber cut would) and can carry a stochastic loss model such as the
Gilbert-Elliott process used to reproduce the paper's Table 1.

Delivery is **coalesced**: propagation delay is constant and ``sim.now``
is monotonic, so deliveries on one link are inherently FIFO. Instead of
one heap event per in-flight packet, the link keeps an internal deque of
``(deliver_ps, seq, pkt)`` and ONE armed engine event that drains every
due entry and re-arms for the next head. ``seq`` is reserved from the
engine at transmit time (:meth:`Simulator.reserve_seq`), so the drain
event carries exactly the ``(time, seq)`` key the per-packet schedule
would have used — firing order is provably identical (the heap orders by
that key and nothing else). On a high-BDP inter-DC link this replaces
hundreds of heap entries with one. Set the module flag
``COALESCED_DELIVERY = False`` before constructing links to get the
reference one-event-per-packet path (the determinism tests diff the two).

The feeding :class:`~repro.sim.queues.Port` may additionally
**batch-advance** its drain (see ``queues.BATCH_DRAIN``): it hands each
packet to :meth:`Link._schedule` at *enqueue* time with the precomputed
serialization-finish instant, instead of calling :meth:`transmit` from a
per-packet finish callback. Scheduled entries sit in the same in-flight
deque (their wire-entry time is ``deliver_ps - prop_ps``); anything that
could change a not-yet-on-the-wire packet's fate — ``fail()``, attaching
a loss model, a direct :meth:`transmit` racing ahead of the schedule —
first *recalls* the future entries to the port (:meth:`_recall` /
``Port._rollback``), which replays them through the reference per-packet
path so failure and loss semantics stay event-for-event identical.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import TYPE_CHECKING, Callable, Optional

from repro.sim.boundary import PacketSink, WiringError, check_sink
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

# A loss model maps (packet, now_ps) -> True when the packet is lost.
LossModel = Callable[[Packet, int], bool]

# Reference-path escape hatch, read once per Link at construction.
COALESCED_DELIVERY = True


class Link:
    """One direction of a cable: propagation delay, failure state, loss model."""
    __slots__ = (
        "sim",
        "name",
        "gbps",
        "prop_ps",
        "src",
        "_sink",
        "up",
        "_loss_model",
        "_port",
        "delivered_pkts",
        "lost_pkts",
        "failed_drops",
        "ctrl_pkts",
        "failures",
        "on_state_change",
        "_obs",
        "_events",
        "_inflight",
        "_drain_handle",
        "_drain_armed",
        "_coalesce",
    )

    def __init__(
        self,
        sim: "Simulator",
        gbps: float,
        prop_ps: int,
        name: str = "",
    ):
        if gbps <= 0:
            raise ValueError(f"link bandwidth must be positive, got {gbps}")
        if prop_ps < 0:
            raise ValueError(f"negative propagation delay: {prop_ps}")
        self.sim = sim
        self.name = name
        self.gbps = gbps
        self.prop_ps = prop_ps
        self.src = None  # sending node; wired by Network (node failure domains)
        self._sink = None  # delivery PacketSink; wired once via connect()
        self.up = True
        # Called with this link after every up/down transition; the
        # owning Network uses it to patch next-hop tables (failure-aware
        # routing). None outside a Network (unit tests, raw links).
        self.on_state_change: Optional[Callable[["Link"], None]] = None
        self._loss_model: Optional[LossModel] = None
        # Back-reference to the feeding Port (wired by Port.__init__).
        # The batch-advance handshake needs it: _drain settles the port's
        # drain schedule, and fail()/loss-model changes recall scheduled
        # packets. None for raw links driven without a port (unit tests).
        self._port = None
        self.delivered_pkts = 0
        self.lost_pkts = 0
        self.failed_drops = 0
        self.ctrl_pkts = 0  # control frames injected past the port (PFC)
        self.failures = 0  # administrative fail() transitions
        # Packets in flight: (deliver_ps, reserved seq, pkt), FIFO by
        # construction. _drain_handle is one perpetual EventHandle,
        # allocated on first use and re-armed forever after; _drain_armed
        # tracks whether it currently sits in the heap.
        self._inflight: deque = deque()
        self._drain_handle = None
        self._drain_armed = False
        self._coalesce = COALESCED_DELIVERY
        self._obs = sim.obs
        self._events = self._obs.events if self._obs is not None else None
        if self._obs is not None:
            self._obs.metrics.defer(self._register_metrics)

    def _register_metrics(self, registry) -> None:
        from repro.obs.metrics import metric_key

        base = f"link.{metric_key(self.name)}"
        registry.gauge(f"{base}.delivered_pkts", lambda: self.delivered_pkts)
        registry.gauge(f"{base}.lost_pkts", lambda: self.lost_pkts)
        registry.gauge(f"{base}.failed_drops", lambda: self.failed_drops)
        registry.gauge(f"{base}.ctrl_pkts", lambda: self.ctrl_pkts)
        registry.gauge(f"{base}.failures", lambda: self.failures)
        registry.gauge(f"{base}.up", lambda: self.up)

    # -- wiring ----------------------------------------------------------

    def connect(self, sink: "PacketSink") -> "Link":
        """Wire the delivery sink (normally the peer node), exactly once.

        Raises :class:`~repro.sim.boundary.WiringError` on double-wiring
        or a non-sink argument; returns the link for chaining. The sink is
        immutable afterwards — cross-shard cuts divert at the feeding
        :class:`~repro.sim.queues.Port`, not here, so a link's delivery
        target always matches its name.
        """
        if self._sink is not None:
            raise WiringError(
                f"link {self.name}: already connected to {self._sink!r}"
            )
        self._sink = check_sink(sink, f"link {self.name}.connect")
        return self

    @property
    def dst(self) -> Optional["PacketSink"]:
        """The delivery sink wired by :meth:`connect` (the peer node)."""
        return self._sink

    @property
    def inflight_pkts(self) -> int:
        """Packets currently propagating (coalesced path only) — under
        batch-advance this includes packets still serializing at the
        feeding port (their wire-entry time is in the future)."""
        return len(self._inflight)

    @property
    def loss_model(self) -> Optional[LossModel]:
        """Stochastic per-packet loss process, or None for a clean wire.

        Assignable mid-run (chaos loss episodes do): the setter first
        recalls any batch-scheduled future packets back to the feeding
        port, so packets that had not reached the wire when the model was
        attached get their loss draw at serialization-finish time exactly
        as the reference per-packet path would."""
        return self._loss_model

    @loss_model.setter
    def loss_model(self, model: Optional[LossModel]) -> None:
        port = self._port
        if port is not None:
            if port._sched:
                port._rollback()
            else:
                port._batch = None
        self._loss_model = model

    def transmit(self, pkt: Packet) -> None:
        """Called by the port when serialization completes.

        This is the link's :class:`~repro.sim.boundary.PacketSink`
        entry point (aliased as ``receive``).
        """
        sim = self.sim
        if self._sink is None:
            raise WiringError(
                f"link {self.name}: transmit before connect() wired a sink"
            )
        port = self._port
        if port is not None and port._sched:
            # A direct transmission (PFC control frame, test harness)
            # racing ahead of batch-scheduled packets would land on the
            # wire out of FIFO order; recall the schedule first so this
            # packet queues behind exactly what is already on the wire.
            port._rollback()
        if not self.up:
            self.failed_drops += 1
            self._emit_failed_drop(pkt, sim.now)
            return
        lm = self._loss_model
        if lm is not None and lm(pkt, sim.now):
            self.lost_pkts += 1
            ev = self._events
            if ev is not None and ev.wants("failure"):
                ev.emit("failure", "pkt_loss", t=sim.now,
                        link=self.name, flow=pkt.flow_id, seq=pkt.seq)
            return
        if self._coalesce:
            q = self._inflight
            # Inlined sim.reserve_seq(): one bump per transmitted packet.
            seq = sim._seq = sim._seq + 1
            q.append((sim.now + self.prop_ps, seq, pkt))
            if not self._drain_armed:
                self._drain_armed = True
                t, s, _ = q[0]
                handle = self._drain_handle
                if handle is None:
                    self._drain_handle = sim.at_seq(t, s, self._drain)
                else:
                    # sim.rearm(handle, t, s) inlined (hot path).
                    handle.time = t
                    handle.fired = False
                    heappush(sim._heap, (t, s, handle))
        else:
            sim.after(self.prop_ps, self._deliver, pkt)

    def _schedule(self, pkt: Packet, finish_ps: int) -> None:
        """Batch-advance entry point: accept a packet whose serialization
        the feeding port has committed to finish at ``finish_ps`` >= now.

        Called from ``Port.enqueue``'s fast path instead of a per-packet
        finish callback later invoking :meth:`transmit`. The delivery seq
        is reserved now (commit time) rather than at finish time; the
        deque stays FIFO because the port commits finishes monotonically
        and every mode switch recalls future entries first.
        """
        sim = self.sim
        seq = sim._seq = sim._seq + 1
        q = self._inflight
        q.append((finish_ps + self.prop_ps, seq, pkt))
        if not self._drain_armed:
            self._drain_armed = True
            t, s, _ = q[0]
            handle = self._drain_handle
            if handle is None:
                self._drain_handle = sim.at_seq(t, s, self._drain)
            else:
                handle.time = t
                handle.fired = False
                heappush(sim._heap, (t, s, handle))

    def _recall(self, expect: int) -> list:
        """Hand back every scheduled packet not yet on the wire, in FIFO
        order, for the feeding port's rollback to re-serialize through
        the reference path. ``expect`` is the port's unsettled schedule
        length; a mismatch means the port/link handshake lost a packet
        and is raised rather than silently corrupted."""
        q = self._inflight
        now = self.sim.now
        prop = self.prop_ps
        out = []
        while q and q[-1][0] - prop > now:
            out.append(q.pop()[2])
        if len(out) != expect:
            raise RuntimeError(
                f"link {self.name}: recalled {len(out)} scheduled packets "
                f"but the port expected {expect}"
            )
        out.reverse()
        if not q and self._drain_armed:
            self._drain_handle.cancel()
            self._drain_handle = None
            self._drain_armed = False
        return out

    def transmit_ctrl(self, pkt: Packet) -> None:
        """Inject a MAC control frame (PFC PAUSE/RESUME) onto the wire.

        Control frames bypass the egress :class:`~repro.sim.queues.Port`
        entirely — PFC runs at the highest priority, so even a paused
        port's link still carries them. They are counted in
        ``ctrl_pkts`` so the chaos conservation invariant can balance
        packets the port serialized against packets the link saw
        (``sent + ctrl_pkts == delivered + lost + failed + inflight``).
        Serialization time for the 64-byte frame is folded into the
        propagation delay.
        """
        self.ctrl_pkts += 1
        self.transmit(pkt)

    def _drain(self) -> None:
        """Deliver every due in-flight packet, re-arm for the next head.

        The armed flag is cleared before delivering so that a ``fail()``
        triggered from inside ``dst.receive`` sees no armed event and
        simply flushes the deque; the post-loop re-arm then finds it
        empty and stays dark.
        """
        sim = self.sim
        now = sim.now
        q = self._inflight
        self._drain_armed = False
        port = self._port
        if port is not None:
            sched = port._sched
            if sched and sched[0][0] <= now:
                # Settle the feeding port's drain schedule before
                # delivering (loop inlined from Port._settle — once per
                # packet in steady state): every serialization that
                # logically completed by now must be reflected in
                # tx_bytes / occupancy (and credited as an event) before
                # downstream receive callbacks can observe the port.
                bq = port.bytes_queued
                n = 0
                while sched and sched[0][0] <= now:
                    bq -= sched.popleft()[1]
                    n += 1
                port.tx_bytes += port.bytes_queued - bq
                port.bytes_queued = bq
                sim._n_executed += n
        sink = self._sink
        delivered = 0
        while q and q[0][0] <= now:
            pkt = q.popleft()[2]
            delivered += 1
            sink.receive(pkt)
        if delivered:
            self.delivered_pkts += delivered
        if q:
            t, s, _ = q[0]
            self._drain_armed = True
            handle = self._drain_handle
            handle.time = t
            handle.fired = False
            heappush(sim._heap, (t, s, handle))

    def _deliver(self, pkt: Packet) -> None:
        # Reference (per-packet-event) path. A failure while the packet
        # was in flight also kills it; the coalesced path flushes these
        # eagerly in fail() instead.
        if not self.up:
            self.failed_drops += 1
            self._emit_failed_drop(pkt, self.sim.now)
            return
        self.delivered_pkts += 1
        self._sink.receive(pkt)

    def _emit_failed_drop(self, pkt: Packet, now: int) -> None:
        ev = self._events
        if ev is not None and ev.wants("failure"):
            ev.emit("failure", "failed_drop", t=now, link=self.name,
                    flow=pkt.flow_id, seq=pkt.seq)

    def _flush_inflight(self) -> None:
        """Kill everything mid-flight: count it as failed_drops, emit the
        same telemetry as the transmit-while-down path, disarm the drain.
        A cancelled handle cannot be re-armed, so the next transmission
        after a restore allocates a fresh one."""
        if self._drain_armed:
            self._drain_handle.cancel()
            self._drain_handle = None
            self._drain_armed = False
        q = self._inflight
        if not q:
            return
        now = self.sim.now
        while q:
            pkt = q.popleft()[2]
            self.failed_drops += 1
            self._emit_failed_drop(pkt, now)

    def fail(self) -> None:
        """Administratively fail the link. Idempotent: failing a link
        that is already down neither counts a second failure nor
        notifies the control plane again. Everything mid-flight is
        dropped into ``failed_drops`` at fail time, as a fiber cut
        would."""
        if not self.up:
            return
        self.up = False
        port = self._port
        if port is not None:
            # Batch-scheduled packets that have not reached the wire are
            # NOT in flight: recall them to the port before the flush so
            # they re-serialize and hit the down link as per-packet
            # failed_drops at their finish times, as the reference path
            # would. (_batch invalidates either way: no new commits while
            # the link is down.)
            if port._sched:
                port._rollback()
            else:
                port._batch = None
        self.failures += 1
        obs = self._obs
        if obs is not None:
            obs.metrics.counter("failures.link_down").inc()
            ev = obs.events
            if ev is not None and ev.wants("failure"):
                ev.emit("failure", "link_down", t=self.sim.now,
                        link=self.name)
        self._flush_inflight()
        if self.on_state_change is not None:
            self.on_state_change(self)

    def restore(self) -> None:
        """Bring the link back up. Idempotent like :meth:`fail`."""
        if self.up:
            return
        self.up = True
        if self._port is not None:
            self._port._batch = None  # re-evaluate batch eligibility
        obs = self._obs
        if obs is not None:
            obs.metrics.counter("failures.link_up").inc()
            ev = obs.events
            if ev is not None and ev.wants("failure"):
                ev.emit("failure", "link_up", t=self.sim.now, link=self.name)
        if self.on_state_change is not None:
            self.on_state_change(self)

    # PacketSink conformance: handing a packet to a link means "start
    # propagating it" — the same entry the feeding port calls.
    receive = transmit

    def __repr__(self) -> str:  # pragma: no cover
        state = "up" if self.up else "DOWN"
        return f"<Link {self.name} {self.gbps}Gbps prop={self.prop_ps}ps {state}>"
