"""Failure injection: scheduled link failures and correlated random loss.

The paper's section 2.4 measurement (Table 1) shows inter-DC losses are
rare but *correlated* — within 10-packet blocks, multi-packet losses occur
far more often than independence would predict. We reproduce that process
with a two-state Gilbert-Elliott model: a mostly-lossless Good state and a
lossy Bad state with geometric sojourn times. `calibrate_gilbert_elliott`
fits (p_enter_bad, p_exit_bad, bad_loss) so the model's marginal loss rate
and burstiness match a target.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.link import Link
    from repro.sim.packet import Packet


@dataclass(frozen=True)
class GilbertElliottParams:
    """Per-packet two-state Markov loss process parameters."""

    p_good_to_bad: float
    p_bad_to_good: float
    loss_good: float = 0.0
    loss_bad: float = 0.5

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad"):
            v = getattr(self, name)
            if not (0.0 <= v <= 1.0):
                raise ValueError(f"{name}={v} outside [0, 1]")

    @property
    def stationary_bad(self) -> float:
        denom = self.p_good_to_bad + self.p_bad_to_good
        return self.p_good_to_bad / denom if denom > 0 else 0.0

    @property
    def marginal_loss_rate(self) -> float:
        pb = self.stationary_bad
        return pb * self.loss_bad + (1 - pb) * self.loss_good


class GilbertElliottLoss:
    """A link loss model implementing the Gilbert-Elliott process.

    Instances are callables matching :data:`repro.sim.link.LossModel`;
    the state advances once per packet traversing the link.
    """

    __slots__ = ("params", "_rng", "bad", "losses", "packets")

    def __init__(self, params: GilbertElliottParams, seed: int = 0):
        self.params = params
        self._rng = random.Random(seed)
        self.bad = False
        self.losses = 0
        self.packets = 0

    def __call__(self, pkt: "Packet", now_ps: int) -> bool:
        rng = self._rng
        p = self.params
        if self.bad:
            if rng.random() < p.p_bad_to_good:
                self.bad = False
        else:
            if rng.random() < p.p_good_to_bad:
                self.bad = True
        loss_p = p.loss_bad if self.bad else p.loss_good
        self.packets += 1
        lost = rng.random() < loss_p
        if lost:
            self.losses += 1
        return lost


def calibrate_gilbert_elliott(
    target_loss_rate: float,
    mean_burst_packets: float = 2.5,
    loss_bad: float = 0.5,
) -> GilbertElliottParams:
    """Fit Gilbert-Elliott parameters to a marginal loss rate and a mean
    loss-burst length (packets lost per Bad-state visit).

    With loss-free Good state, a Bad visit of geometric length L
    (mean 1/p_bad_to_good) loses ``loss_bad * L`` packets on average, so
    ``p_bad_to_good = loss_bad / mean_burst_packets``. The stationary Bad
    probability needed for the target marginal rate then gives
    ``p_good_to_bad``.
    """
    if not (0.0 < target_loss_rate < 1.0):
        raise ValueError("target loss rate must be in (0, 1)")
    if mean_burst_packets < loss_bad:
        raise ValueError("mean burst must be >= loss_bad (one packet min)")
    p_exit = loss_bad / mean_burst_packets
    pb = target_loss_rate / loss_bad  # stationary Bad-state probability
    if pb >= 1.0:
        raise ValueError("target loss rate too high for chosen loss_bad")
    p_enter = pb * p_exit / (1.0 - pb)
    return GilbertElliottParams(
        p_good_to_bad=p_enter,
        p_bad_to_good=p_exit,
        loss_good=0.0,
        loss_bad=loss_bad,
    )


class BernoulliLoss:
    """Independent per-packet loss, for control experiments."""

    __slots__ = ("p", "_rng", "losses", "packets")

    def __init__(self, p: float, seed: int = 0):
        if not (0.0 <= p <= 1.0):
            raise ValueError(f"loss probability {p} outside [0, 1]")
        self.p = p
        self._rng = random.Random(seed)
        self.losses = 0
        self.packets = 0

    def __call__(self, pkt: "Packet", now_ps: int) -> bool:
        self.packets += 1
        lost = self._rng.random() < self.p
        if lost:
            self.losses += 1
        return lost


def _fail_or_skip(sim: "Simulator", link: "Link") -> None:
    """Fire a scheduled failure, unless the link is already down.

    Overlapping schedules used to double-fail the link and over-count
    ``link.failures``; now the late schedule is a logged no-op, and the
    earlier schedule's repair still brings the link back.
    """
    if not link.up:
        obs = sim.obs
        if obs is not None:
            obs.metrics.counter("failures.skipped").inc()
            ev = obs.events
            if ev is not None and ev.wants("failure"):
                ev.emit("failure", "skipped", t=sim.now, link=link.name)
        return
    link.fail()


def schedule_link_failure(
    sim: "Simulator",
    link: "Link",
    fail_at_ps: int,
    repair_after_ps: Optional[int] = None,
) -> None:
    """Fail ``link`` at ``fail_at_ps``; optionally repair after a delay.

    If the link is already down when the failure fires (overlapping
    schedules), the failure is skipped rather than double-counted.
    """
    obs = sim.obs
    if obs is not None:
        obs.metrics.counter("failures.scheduled").inc()
        ev = obs.events
        if ev is not None and ev.wants("failure"):
            ev.emit("failure", "scheduled", t=sim.now, link=link.name,
                    fail_at=fail_at_ps, repair_after=repair_after_ps)
    sim.at(fail_at_ps, _fail_or_skip, sim, link)
    if repair_after_ps is not None:
        sim.at(fail_at_ps + repair_after_ps, link.restore)


def schedule_bidirectional_failure(
    sim: "Simulator",
    link_ab: "Link",
    link_ba: "Link",
    fail_at_ps: int,
    repair_after_ps: Optional[int] = None,
) -> None:
    """Fail both directions of a cable at once (a fiber cut)."""
    schedule_link_failure(sim, link_ab, fail_at_ps, repair_after_ps)
    schedule_link_failure(sim, link_ba, fail_at_ps, repair_after_ps)


def _fail_node_or_skip(sim: "Simulator", node) -> None:
    """Fire a scheduled node failure, unless the node is already down —
    the same overlap semantics links have: the late schedule is a logged
    no-op and the earlier schedule's repair still restores the node."""
    if not node.up:
        obs = sim.obs
        if obs is not None:
            obs.metrics.counter("failures.skipped").inc()
            ev = obs.events
            if ev is not None and ev.wants("failure"):
                ev.emit("failure", "skipped", t=sim.now, node=node.name)
        return
    node.fail()


def schedule_node_failure(
    sim: "Simulator",
    node,
    fail_at_ps: int,
    repair_after_ps: Optional[int] = None,
) -> None:
    """Crash ``node`` (a Switch or Host) at ``fail_at_ps``; optionally
    restore it after a delay. The crash atomically fails every attached
    cable and, on hosts, tears down registered transport endpoints."""
    obs = sim.obs
    if obs is not None:
        obs.metrics.counter("failures.scheduled").inc()
        ev = obs.events
        if ev is not None and ev.wants("failure"):
            ev.emit("failure", "scheduled", t=sim.now, node=node.name,
                    fail_at=fail_at_ps, repair_after=repair_after_ps)
    sim.at(fail_at_ps, _fail_node_or_skip, sim, node)
    if repair_after_ps is not None:
        sim.at(fail_at_ps + repair_after_ps, node.restore)
