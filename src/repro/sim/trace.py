"""Monitors: periodic sampling of queues and flow rates.

These are the instrumentation the paper's plots need — queue occupancy
over time (Fig 4), per-flow sending rates (Figs 3, 8) — implemented as
self-rescheduling simulator events. Sample storage is an
:class:`repro.obs.metrics.TimeSeries`; when the simulator has telemetry
enabled the series is registered in its metrics registry (under
``trace.queue.*`` / ``trace.rate.*``) so monitor data shows up in
snapshots alongside counters and gauges.

Both monitors are cancellable: :meth:`QueueMonitor.stop` /
:meth:`RateMonitor.stop` cancel the pending self-rescheduled event, so a
monitor can't keep an otherwise-idle event loop alive.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from repro.obs.metrics import TimeSeries, metric_key

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import EventHandle, Simulator
    from repro.sim.queues import Port


def _backing_series(sim: "Simulator", prefix: str) -> TimeSeries:
    """A registry-owned series when telemetry is on, standalone otherwise.

    Registry names get a deterministic ``.0``/``.1`` suffix so two
    monitors on the same target never share (and interleave) one series.
    """
    obs = sim.obs
    if obs is None:
        return TimeSeries(prefix)
    return obs.metrics.series(obs.metrics.unique_name(prefix))


class QueueMonitor:
    """Samples a port's physical (and phantom) occupancy every interval."""

    def __init__(
        self,
        sim: "Simulator",
        port: "Port",
        interval_ps: int,
        stop_ps: Optional[int] = None,
    ):
        if interval_ps <= 0:
            raise ValueError("sampling interval must be positive")
        self.sim = sim
        self.port = port
        self.interval_ps = interval_ps
        self.stop_ps = stop_ps
        self._series = _backing_series(
            sim, f"trace.queue.{metric_key(port.name)}"
        )
        self._stopped = False
        self._next: Optional["EventHandle"] = sim.after(0, self._sample)

    @property
    def samples(self) -> List[Tuple[int, int, float]]:
        """``(t, phys_bytes, phantom_bytes)`` rows, oldest first."""
        return self._series.rows

    def _sample(self) -> None:
        self._next = None
        now = self.sim.now
        if self._stopped or (self.stop_ps is not None and now > self.stop_ps):
            return
        self._series.append(
            now, self.port.occupancy_bytes(), self.port.phantom_occupancy()
        )
        self._next = self.sim.after(self.interval_ps, self._sample)

    def stop(self) -> None:
        """Cancel the pending sample; the collected samples stay readable."""
        self._stopped = True
        if self._next is not None:
            self._next.cancel()
            self._next = None

    def max_physical(self) -> int:
        return self._series.max(1)

    def mean_physical(self) -> float:
        return self._series.mean(1)


class RateMonitor:
    """Samples goodput (acked bytes) of a set of flows every interval.

    ``probe`` maps a flow object to its cumulative acked byte count; the
    monitor differentiates between samples to produce rates in Gbps.
    Each sample is one time-series row ``(t, rate_0, ..., rate_n-1)``.
    """

    def __init__(
        self,
        sim: "Simulator",
        flows: Sequence[object],
        probe: Callable[[object], int],
        interval_ps: int,
        stop_ps: Optional[int] = None,
    ):
        if interval_ps <= 0:
            raise ValueError("sampling interval must be positive")
        self.sim = sim
        self.flows = list(flows)
        self.probe = probe
        self.interval_ps = interval_ps
        self.stop_ps = stop_ps
        self._series = _backing_series(sim, "trace.rate")
        self._last = [0] * len(self.flows)
        self._stopped = False
        self._next: Optional["EventHandle"] = sim.after(
            interval_ps, self._sample
        )

    @property
    def times(self) -> List[int]:
        return self._series.times()

    @property
    def rates_gbps(self) -> List[List[float]]:
        return [self._series.column(i + 1) for i in range(len(self.flows))]

    def _sample(self) -> None:
        self._next = None
        now = self.sim.now
        if self._stopped or (self.stop_ps is not None and now > self.stop_ps):
            return
        rates = []
        for i, flow in enumerate(self.flows):
            cur = self.probe(flow)
            delta = cur - self._last[i]
            self._last[i] = cur
            # bytes over interval_ps picoseconds -> Gbps
            rates.append(delta * 8 / (self.interval_ps / 1000.0))
        self._series.append(now, *rates)
        self._next = self.sim.after(self.interval_ps, self._sample)

    def stop(self) -> None:
        """Cancel the pending sample; the collected samples stay readable."""
        self._stopped = True
        if self._next is not None:
            self._next.cancel()
            self._next = None

    def series(self, i: int) -> Tuple[List[int], List[float]]:
        return self.times, self._series.column(i + 1)
