"""Monitors: periodic sampling of queues and flow rates.

These are the instrumentation the paper's plots need — queue occupancy
over time (Fig 4), per-flow sending rates (Figs 3, 8) — implemented as
self-rescheduling simulator events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.queues import Port


class QueueMonitor:
    """Samples a port's physical (and phantom) occupancy every interval."""

    def __init__(
        self,
        sim: "Simulator",
        port: "Port",
        interval_ps: int,
        stop_ps: Optional[int] = None,
    ):
        if interval_ps <= 0:
            raise ValueError("sampling interval must be positive")
        self.sim = sim
        self.port = port
        self.interval_ps = interval_ps
        self.stop_ps = stop_ps
        self.samples: List[Tuple[int, int, float]] = []  # (t, phys, phantom)
        sim.after(0, self._sample)

    def _sample(self) -> None:
        now = self.sim.now
        if self.stop_ps is not None and now > self.stop_ps:
            return
        self.samples.append(
            (now, self.port.occupancy_bytes(), self.port.phantom_occupancy())
        )
        self.sim.after(self.interval_ps, self._sample)

    def max_physical(self) -> int:
        return max((s[1] for s in self.samples), default=0)

    def mean_physical(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s[1] for s in self.samples) / len(self.samples)


class RateMonitor:
    """Samples goodput (acked bytes) of a set of flows every interval.

    ``probe`` maps a flow object to its cumulative acked byte count; the
    monitor differentiates between samples to produce rates in Gbps.
    """

    def __init__(
        self,
        sim: "Simulator",
        flows: Sequence[object],
        probe: Callable[[object], int],
        interval_ps: int,
        stop_ps: Optional[int] = None,
    ):
        if interval_ps <= 0:
            raise ValueError("sampling interval must be positive")
        self.sim = sim
        self.flows = list(flows)
        self.probe = probe
        self.interval_ps = interval_ps
        self.stop_ps = stop_ps
        self.times: List[int] = []
        self.rates_gbps: List[List[float]] = [[] for _ in self.flows]
        self._last = [0] * len(self.flows)
        sim.after(interval_ps, self._sample)

    def _sample(self) -> None:
        now = self.sim.now
        if self.stop_ps is not None and now > self.stop_ps:
            return
        self.times.append(now)
        for i, flow in enumerate(self.flows):
            cur = self.probe(flow)
            delta = cur - self._last[i]
            self._last[i] = cur
            # bytes over interval_ps picoseconds -> Gbps
            gbps = delta * 8 / (self.interval_ps / 1000.0)
            self.rates_gbps[i].append(gbps)
        self.sim.after(self.interval_ps, self._sample)

    def series(self, i: int) -> Tuple[List[int], List[float]]:
        return self.times, self.rates_gbps[i]
