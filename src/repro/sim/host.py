"""End hosts.

A host owns one uplink port per attached link (normally exactly one, to
its edge switch) and a flow-endpoint registry: transport endpoints
(senders and receivers) register under their flow id, and every packet
arriving at the host is dispatched to the endpoint registered for its
flow. Unknown flows are counted, not fatal — packets can legitimately
arrive after a flow completed (e.g. duplicate retransmissions).

Hosts are failure domains (:class:`~repro.sim.node.FailureDomain`): a
crashed host fails its NIC cables and tears down every registered
endpoint — senders are aborted, receivers closed — so no timer or
registration survives on a dead node.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Protocol, Tuple

from repro.sim.node import FailureDomain
from repro.sim.packet import CNP, DATA, PAUSE, Packet, default_pool

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.queues import Port


class Endpoint(Protocol):
    """Anything registered on a host to receive packets for one flow."""
    def on_packet(self, pkt: Packet) -> None: ...


class Host(FailureDomain):
    """An end host: one NIC uplink port plus the per-flow endpoint registry."""
    __slots__ = (
        "sim",
        "node_id",
        "name",
        "ports",
        "endpoints",
        "rx_pkts",
        "orphan_pkts",
        "dc",
        "up",
        "attached_links",
        "down_node_drops",
        "pool",
        "_uplink",
        "_spans",
    )

    def __init__(self, sim: "Simulator", node_id: int, name: str, dc: int = 0):
        self.sim = sim
        self.node_id = node_id
        self.name = name
        self.dc = dc  # datacenter index this host lives in
        self.ports: Dict[Tuple[int, int], "Port"] = {}
        self.endpoints: Dict[int, Endpoint] = {}
        self.rx_pkts = 0
        self.orphan_pkts = 0
        # Opt-in packet free-list (REPRO_PACKET_POOL=1|poison, or
        # enable_packet_pool()); None — the default — allocates fresh
        # Packets and lets the GC reclaim them.
        self.pool = default_pool()
        self._uplink: "Port" = None
        self._init_failure_domain()
        obs = sim.obs
        self._spans = obs.spans if obs is not None else None
        if obs is not None:
            obs.metrics.defer(self._register_metrics)

    def _register_metrics(self, registry) -> None:
        from repro.obs.metrics import metric_key

        base = f"host.{metric_key(self.name)}"
        registry.gauge(f"{base}.rx_pkts", lambda: self.rx_pkts)
        registry.gauge(f"{base}.orphan_pkts", lambda: self.orphan_pkts)
        registry.gauge(f"{base}.down_node_drops", lambda: self.down_node_drops)
        registry.gauge(f"{base}.up", lambda: self.up)

    # -- endpoint registry -------------------------------------------------

    def register(self, flow_id: int, endpoint: Endpoint) -> None:
        if flow_id in self.endpoints:
            raise ValueError(
                f"flow {flow_id} already registered on host {self.name}"
            )
        self.endpoints[flow_id] = endpoint
        if self._spans is not None:
            self._spans.endpoint_open(flow_id, self.sim.now, self.name)

    def unregister(self, flow_id: int) -> None:
        """Remove (and close) the endpoint registered for ``flow_id``.

        Endpoints exposing ``close()`` (receivers) get it called so
        their private timers die with the registration — otherwise an
        unregistered receiver's idle/block timers would keep the event
        loop alive with nothing to deliver to.
        """
        endpoint = self.endpoints.pop(flow_id, None)
        if endpoint is None:
            return
        if self._spans is not None:
            self._spans.endpoint_close(flow_id, self.sim.now, self.name)
        close = getattr(endpoint, "close", None)
        if close is not None:
            close()

    def _on_fail(self) -> None:
        """Crash teardown: abort local senders, close local receivers.

        An aborted sender unregisters both its endpoints itself (which
        mutates ``self.endpoints``, hence the list() snapshot); plain
        receivers are dropped through :meth:`unregister` so their timers
        are cancelled.
        """
        for flow_id, endpoint in list(self.endpoints.items()):
            abort = getattr(endpoint, "abort", None)
            if abort is not None:
                abort("host_failed")
            else:
                self.unregister(flow_id)

    # -- datapath ----------------------------------------------------------

    def enable_packet_pool(self, poison: bool = False) -> "PacketPool":
        """Attach a packet free-list to this host (overrides the
        process-wide REPRO_PACKET_POOL default)."""
        from repro.sim.packet import PacketPool

        self.pool = PacketPool(poison=poison)
        return self.pool

    @property
    def uplink(self) -> "Port":
        """The host's single NIC egress port (asserts exactly one).

        Cached on first access — topology wiring is complete before the
        first packet moves, and ports are never re-wired afterwards."""
        cached = self._uplink
        if cached is not None:
            return cached
        if len(self.ports) != 1:
            raise RuntimeError(
                f"host {self.name} has {len(self.ports)} ports; expected 1"
            )
        self._uplink = next(iter(self.ports.values()))
        return self._uplink

    def send(self, pkt: Packet) -> None:
        """Offer ``pkt`` to the NIC egress queue (the uplink port sink)."""
        (self._uplink or self.uplink).receive(pkt)

    def receive(self, pkt: Packet) -> None:
        """Dispatch an arriving packet to its flow's registered endpoint.

        The host's :class:`~repro.sim.boundary.PacketSink` entry point;
        the access link delivers here.
        """
        if not self.up:
            self._count_down_drop()
            return
        if pkt.kind > CNP:
            # PFC PAUSE/RESUME from the edge switch: freeze/release the
            # NIC uplink. Hosts honor pause but never originate it.
            port = self.ports.get((pkt.src, pkt.seq))
            if port is not None:
                if pkt.kind == PAUSE:
                    port.pause(pkt.payload)
                else:
                    port.resume()
            return
        self.rx_pkts += 1
        endpoint = self.endpoints.get(pkt.flow_id)
        if endpoint is None:
            self.orphan_pkts += 1
        else:
            endpoint.on_packet(pkt)
        # Control packets (ACK/NACK/CNP) are consumed synchronously by
        # the endpoint and never aliased elsewhere, so they are safe to
        # recycle the moment dispatch returns. DATA packets are recycled
        # at the *sender* once the echoing ACK proves the copy was
        # consumed (see transport.base.Sender._on_ack).
        pool = self.pool
        if pool is not None and pkt.kind != DATA:
            pool.release(pkt)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Host {self.name} dc={self.dc} flows={len(self.endpoints)}>"
