"""Packet records.

One slotted class for all packet kinds keeps the hot path monomorphic.
``kind`` is one of DATA / ACK / NACK. ACKs echo the data packet's ECN mark
and carry the data packet's send timestamp so senders can measure RTT
without per-sequence state. NACKs identify an unrecoverable erasure-coding
block (UnoRC, paper section 4.2).

:class:`PacketPool` is an opt-in free-list that recycles Packet objects
once the transport has provably consumed them (see the release rules in
DESIGN.md "Performance"). Off by default; enable process-wide with
``REPRO_PACKET_POOL=1`` or, for debugging, ``REPRO_PACKET_POOL=poison``,
which overwrites every field of a released packet with a sentinel and
verifies the poison on reuse — a use-after-free or double-release then
fails loudly instead of corrupting a simulation.

``REPRO_PACKET_POOL=soa`` selects the struct-of-arrays backend
(:class:`SoAPacketStore` / :class:`SoAPacketPool`): packet fields live in
numpy columns and :class:`SoAPacket` is a slotted per-packet *view*
(store + row index) with the exact attribute surface of
:class:`Packet`, so the transport layer is oblivious to the layout. The
pool-release discipline is what makes this safe: a released row is free
for reuse precisely because release points already prove no alias
remains. Requires numpy; without it the mode falls back to the plain
free-list pool.
"""

from __future__ import annotations

import os
from typing import List, Optional

DATA = 0
ACK = 1
NACK = 2
CNP = 3  # Annulus-style near-source congestion notification (extension)
PAUSE = 4   # PFC XOFF: freeze the receiver's port back toward the sender
RESUME = 5  # PFC XON: release a previously paused port

ACK_SIZE = 64  # bytes on the wire for ACK/NACK/CNP control packets

_KIND_NAMES = {DATA: "DATA", ACK: "ACK", NACK: "NACK", CNP: "CNP",
               PAUSE: "PAUSE", RESUME: "RESUME"}


class Packet:
    """One packet on the wire; ``kind`` selects DATA/ACK/NACK/CNP semantics."""
    __slots__ = (
        "kind",
        "flow_id",
        "src",        # source host id
        "dst",        # destination host id
        "sport",      # entropy value used by ECMP hashing / subflow id
        "dport",
        "seq",        # data: packet sequence number; ack: acked sequence
        "size",       # bytes on the wire (header+payload)
        "payload",    # payload bytes represented by this packet
        "ecn",        # CE mark, set by queues in the network
        "sent_ps",    # timestamp when the data packet was (re)sent
        "echo_sent_ps",  # in ACKs: sent_ps of the data packet being acked
        "ecn_echo",   # in ACKs: data packet's ECN mark
        "block_id",   # erasure-coding block index (or None)
        "block_pos",  # position within the block (0..n-1; >= x means parity)
        "nack_block", # in NACKs: block id that could not be recovered
        "retx",       # retransmission count of this sequence
        "hops",       # number of switch traversals (diagnostics)
        "int_util",   # max per-hop utilization stamped by INT ports
    )

    def __init__(
        self,
        kind: int,
        flow_id: int,
        src: int,
        dst: int,
        seq: int,
        size: int,
        sport: int = 0,
        dport: int = 0,
        payload: int = 0,
    ):
        self.kind = kind
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.sport = sport
        self.dport = dport
        self.seq = seq
        self.size = size
        self.payload = payload
        self.ecn = False
        self.sent_ps = 0
        self.echo_sent_ps = 0
        self.ecn_echo = False
        self.block_id: Optional[int] = None
        self.block_pos = 0
        self.nack_block: Optional[int] = None
        self.retx = 0
        self.hops = 0
        self.int_util = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{_KIND_NAMES.get(self.kind, '?')} flow={self.flow_id} "
            f"seq={self.seq} {self.src}->{self.dst} sport={self.sport} "
            f"size={self.size} ecn={self.ecn}>"
        )


class PacketPool:
    """Free-list of Packet objects (opt-in; see the module docstring).

    ``acquire`` is a drop-in for the ``Packet(...)`` constructor;
    ``release`` returns a packet whose last reference the caller owns.
    The release rules live with the call sites: control packets are
    released by :meth:`Host.receive` after endpoint dispatch, DATA
    packets by the sender once the ACK's echoed timestamp proves the
    exact retired copy was delivered and consumed.

    In poison mode every released packet's fields are overwritten with
    :data:`POISON` and verified on reuse, so a stale alias that wrote to
    a recycled packet — or a double release — raises instead of silently
    corrupting the simulation.
    """

    POISON = -0x5EED

    __slots__ = ("poison", "max_free", "_free", "allocated", "recycled",
                 "released")

    # Slots a released packet must not have been written through. "kind"
    # doubles as the double-release marker in both modes.
    _POISON_SLOTS = (
        "kind", "flow_id", "src", "dst", "sport", "dport", "seq", "size",
        "payload", "sent_ps", "echo_sent_ps", "block_pos", "retx", "hops",
    )

    def __init__(self, poison: bool = False, max_free: int = 65536):
        self.poison = poison
        self.max_free = max_free
        self._free: List[Packet] = []
        self.allocated = 0  # fresh Packet constructions
        self.recycled = 0   # acquires served from the free list
        self.released = 0

    def acquire(
        self,
        kind: int,
        flow_id: int,
        src: int,
        dst: int,
        seq: int,
        size: int,
        sport: int = 0,
        dport: int = 0,
        payload: int = 0,
    ) -> Packet:
        free = self._free
        if not free:
            self.allocated += 1
            return Packet(kind, flow_id, src, dst, seq, size,
                          sport=sport, dport=dport, payload=payload)
        pkt = free.pop()
        if self.poison:
            self._check_poison(pkt)
        self.recycled += 1
        # Re-run the constructor body: every slot reset, same defaults.
        pkt.__init__(kind, flow_id, src, dst, seq, size,
                     sport=sport, dport=dport, payload=payload)
        return pkt

    def release(self, pkt: Packet) -> None:
        if pkt.kind == self.POISON:
            raise RuntimeError(
                f"double release of pooled packet {pkt!r}"
            )
        if len(self._free) >= self.max_free:
            return
        self.released += 1
        if self.poison:
            for slot in self._POISON_SLOTS:
                setattr(pkt, slot, self.POISON)
            pkt.ecn = pkt.ecn_echo = False
            pkt.block_id = pkt.nack_block = None
            pkt.int_util = 0.0
        else:
            pkt.kind = self.POISON  # double-release marker
        self._free.append(pkt)

    def _check_poison(self, pkt: Packet) -> None:
        for slot in self._POISON_SLOTS:
            if getattr(pkt, slot) != self.POISON:
                raise RuntimeError(
                    "pooled packet written after release "
                    f"(field {slot!r} = {getattr(pkt, slot)!r})"
                )

    def stats(self) -> dict:
        return {
            "allocated": self.allocated,
            "recycled": self.recycled,
            "released": self.released,
            "free": len(self._free),
            "poison": self.poison,
        }


# -- struct-of-arrays backend (REPRO_PACKET_POOL=soa) ----------------------

try:  # gated: the simulator itself has no hard numpy dependency
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

# Column layout. OPT columns encode None as -1 (block ids are >= 0).
_SOA_INT_COLS = (
    "kind", "flow_id", "src", "dst", "sport", "dport", "seq", "size",
    "payload", "sent_ps", "echo_sent_ps", "block_pos", "retx", "hops",
)
_SOA_OPT_COLS = ("block_id", "nack_block")
_SOA_BOOL_COLS = ("ecn", "ecn_echo")
_SOA_ALL_COLS = _SOA_INT_COLS + _SOA_OPT_COLS + _SOA_BOOL_COLS + ("int_util",)


class SoAPacketStore:
    """Columnar packet storage: one ndarray per Packet field, one row per
    live packet. Rows are handed out by :class:`SoAPacketPool`; growth
    doubles every column in place on the store object, so outstanding
    views (which hold ``(store, row)``, never an array) stay valid."""

    __slots__ = _SOA_ALL_COLS + ("capacity", "used")

    def __init__(self, capacity: int = 256):
        if _np is None:  # pragma: no cover
            raise RuntimeError("SoA packet backend requires numpy")
        self.capacity = capacity
        self.used = 0
        zeros = _np.zeros
        for col in _SOA_INT_COLS + _SOA_OPT_COLS:
            setattr(self, col, zeros(capacity, dtype=_np.int64))
        for col in _SOA_BOOL_COLS:
            setattr(self, col, zeros(capacity, dtype=bool))
        self.int_util = zeros(capacity, dtype=_np.float64)

    def alloc_row(self) -> int:
        i = self.used
        if i == self.capacity:
            cap = self.capacity * 2
            for col in _SOA_ALL_COLS:
                old = getattr(self, col)
                arr = _np.zeros(cap, dtype=old.dtype)
                arr[: self.capacity] = old
                setattr(self, col, arr)
            self.capacity = cap
        self.used = i + 1
        return i


class SoAPacket:
    """Slotted per-packet view over one :class:`SoAPacketStore` row.

    Presents the exact attribute surface of :class:`Packet` (fields are
    generated properties installed below), so transports, queues, and
    switches are oblivious to the columnar layout. Getters convert to
    native Python scalars: numpy int64 deliberately never escapes —
    ECMP's 64-bit hash mixing masks with ``2**64 - 1``, which overflows
    a fixed-width numpy integer."""

    __slots__ = ("_s", "_i")

    def __init__(self, store: SoAPacketStore, index: int):
        self._s = store
        self._i = index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{_KIND_NAMES.get(self.kind, '?')} flow={self.flow_id} "
            f"seq={self.seq} {self.src}->{self.dst} sport={self.sport} "
            f"size={self.size} ecn={self.ecn} row={self._i}>"
        )


def _install_soa_fields() -> None:
    def int_field(col: str):
        def fget(self):
            return int(getattr(self._s, col)[self._i])

        def fset(self, value):
            getattr(self._s, col)[self._i] = value

        return property(fget, fset)

    def opt_field(col: str):
        def fget(self):
            v = int(getattr(self._s, col)[self._i])
            return None if v < 0 else v

        def fset(self, value):
            getattr(self._s, col)[self._i] = -1 if value is None else value

        return property(fget, fset)

    def bool_field(col: str):
        def fget(self):
            return bool(getattr(self._s, col)[self._i])

        def fset(self, value):
            getattr(self._s, col)[self._i] = value

        return property(fget, fset)

    def float_field(col: str):
        def fget(self):
            return float(getattr(self._s, col)[self._i])

        def fset(self, value):
            getattr(self._s, col)[self._i] = value

        return property(fget, fset)

    for col in _SOA_INT_COLS:
        setattr(SoAPacket, col, int_field(col))
    for col in _SOA_OPT_COLS:
        setattr(SoAPacket, col, opt_field(col))
    for col in _SOA_BOOL_COLS:
        setattr(SoAPacket, col, bool_field(col))
    SoAPacket.int_util = float_field("int_util")


_install_soa_fields()


class SoAPacketPool:
    """Row allocator over a :class:`SoAPacketStore`, with the same
    acquire/release/stats interface as :class:`PacketPool`.

    The free list holds *views* (not row indices), so steady-state
    traffic recycles both the row and its SoAPacket wrapper with zero
    allocation. The pool-release discipline of the free-list pool is
    what makes row reuse safe; ``kind`` doubles as the double-release
    marker exactly as in :class:`PacketPool`. Control packets built as
    plain :class:`Packet` records (CNP/NACK/PAUSE/RESUME factories)
    reach :meth:`release` through the endpoint dispatch path — they own
    no row, so they are dropped, not recycled.
    """

    POISON = PacketPool.POISON

    __slots__ = ("store", "poison", "max_free", "_free", "allocated",
                 "recycled", "released")

    def __init__(self, capacity: int = 256, max_free: int = 65536):
        self.store = SoAPacketStore(capacity)
        self.poison = False  # stats-surface parity with PacketPool
        self.max_free = max_free
        self._free: List[SoAPacket] = []
        self.allocated = 0  # fresh rows claimed from the store
        self.recycled = 0   # acquires served from the free list
        self.released = 0

    def acquire(
        self,
        kind: int,
        flow_id: int,
        src: int,
        dst: int,
        seq: int,
        size: int,
        sport: int = 0,
        dport: int = 0,
        payload: int = 0,
    ) -> SoAPacket:
        free = self._free
        if free:
            pkt = free.pop()
            self.recycled += 1
        else:
            store = self.store
            pkt = SoAPacket(store, store.alloc_row())
            self.allocated += 1
        s = pkt._s
        i = pkt._i
        s.kind[i] = kind
        s.flow_id[i] = flow_id
        s.src[i] = src
        s.dst[i] = dst
        s.sport[i] = sport
        s.dport[i] = dport
        s.seq[i] = seq
        s.size[i] = size
        s.payload[i] = payload
        s.ecn[i] = False
        s.sent_ps[i] = 0
        s.echo_sent_ps[i] = 0
        s.ecn_echo[i] = False
        s.block_id[i] = -1
        s.block_pos[i] = 0
        s.nack_block[i] = -1
        s.retx[i] = 0
        s.hops[i] = 0
        s.int_util[i] = 0.0
        return pkt

    def release(self, pkt) -> None:
        if type(pkt) is not SoAPacket:
            # A plain Packet from the control-frame factories: no row to
            # reclaim, the object is simply garbage-collected.
            return
        s = pkt._s
        i = pkt._i
        if s.kind[i] == self.POISON:
            raise RuntimeError(f"double release of pooled packet row {i}")
        if len(self._free) >= self.max_free:
            return
        self.released += 1
        s.kind[i] = self.POISON  # double-release marker
        self._free.append(pkt)

    def stats(self) -> dict:
        return {
            "allocated": self.allocated,
            "recycled": self.recycled,
            "released": self.released,
            "free": len(self._free),
            "poison": self.poison,
            "backend": "soa",
            "capacity": self.store.capacity,
        }


_POOL_MODE = os.environ.get("REPRO_PACKET_POOL", "").strip().lower()


def default_pool():
    """A fresh pool per caller (hosts don't share free lists) when
    REPRO_PACKET_POOL opts in; None — no pooling — otherwise. Mode
    ``soa`` selects the columnar backend, falling back to the plain
    free-list pool when numpy is unavailable."""
    if _POOL_MODE in ("", "0", "off", "false", "no"):
        return None
    if _POOL_MODE == "soa" and _np is not None:
        return SoAPacketPool()
    return PacketPool(poison=_POOL_MODE == "poison")


def make_ack(data_pkt: Packet, now_ps: int,
             pool: Optional[PacketPool] = None) -> Packet:
    """Build the ACK for ``data_pkt`` (sent from its receiver back to src),
    recycled from ``pool`` when one is attached."""
    alloc = Packet if pool is None else pool.acquire
    ack = alloc(
        ACK,
        data_pkt.flow_id,
        src=data_pkt.dst,
        dst=data_pkt.src,
        seq=data_pkt.seq,
        size=ACK_SIZE,
        sport=data_pkt.dport,
        dport=data_pkt.sport,
        payload=data_pkt.payload,
    )
    ack.echo_sent_ps = data_pkt.sent_ps
    ack.ecn_echo = data_pkt.ecn
    ack.int_util = data_pkt.int_util  # echo the INT telemetry
    ack.block_id = data_pkt.block_id
    ack.block_pos = data_pkt.block_pos
    ack.sent_ps = now_ps
    return ack


def make_cnp(flow_id: int, switch_src: int, dst: int) -> Packet:
    """Build a QCN-style congestion notification from a switch back to the
    sender ``dst`` (Annulus extension; see repro.core.annulus)."""
    return Packet(CNP, flow_id, src=switch_src, dst=dst, seq=-1, size=ACK_SIZE)


def make_nack(flow_id: int, src: int, dst: int, block_id: int) -> Packet:
    """Build a NACK from the receiver (``src``) to the sender (``dst``)
    reporting that ``block_id`` cannot be recovered (UnoRC)."""
    nack = Packet(NACK, flow_id, src=src, dst=dst, seq=-1, size=ACK_SIZE)
    nack.nack_block = block_id
    return nack


def make_pause(src: int, dst: int, link_index: int, hold_ps: int = 0) -> Packet:
    """Build a PFC PAUSE frame from node ``src`` to neighbor ``dst``.

    ``link_index`` is the parallel-cable index: the receiver pauses its
    egress port keyed ``(src, link_index)`` — the port feeding the cable
    the frame arrived on. ``hold_ps`` carries the pause quantum in
    picoseconds (``payload``); 0 pauses until an explicit RESUME.
    """
    pause = Packet(PAUSE, flow_id=-1, src=src, dst=dst,
                   seq=link_index, size=ACK_SIZE, payload=hold_ps)
    return pause


def make_resume(src: int, dst: int, link_index: int) -> Packet:
    """Build a PFC RESUME frame releasing the port a PAUSE froze."""
    return Packet(RESUME, flow_id=-1, src=src, dst=dst,
                  seq=link_index, size=ACK_SIZE)
