"""Packet records.

One slotted class for all packet kinds keeps the hot path monomorphic.
``kind`` is one of DATA / ACK / NACK. ACKs echo the data packet's ECN mark
and carry the data packet's send timestamp so senders can measure RTT
without per-sequence state. NACKs identify an unrecoverable erasure-coding
block (UnoRC, paper section 4.2).
"""

from __future__ import annotations

from typing import Optional

DATA = 0
ACK = 1
NACK = 2
CNP = 3  # Annulus-style near-source congestion notification (extension)

ACK_SIZE = 64  # bytes on the wire for ACK/NACK/CNP control packets

_KIND_NAMES = {DATA: "DATA", ACK: "ACK", NACK: "NACK", CNP: "CNP"}


class Packet:
    """One packet on the wire; ``kind`` selects DATA/ACK/NACK/CNP semantics."""
    __slots__ = (
        "kind",
        "flow_id",
        "src",        # source host id
        "dst",        # destination host id
        "sport",      # entropy value used by ECMP hashing / subflow id
        "dport",
        "seq",        # data: packet sequence number; ack: acked sequence
        "size",       # bytes on the wire (header+payload)
        "payload",    # payload bytes represented by this packet
        "ecn",        # CE mark, set by queues in the network
        "sent_ps",    # timestamp when the data packet was (re)sent
        "echo_sent_ps",  # in ACKs: sent_ps of the data packet being acked
        "ecn_echo",   # in ACKs: data packet's ECN mark
        "block_id",   # erasure-coding block index (or None)
        "block_pos",  # position within the block (0..n-1; >= x means parity)
        "nack_block", # in NACKs: block id that could not be recovered
        "retx",       # retransmission count of this sequence
        "hops",       # number of switch traversals (diagnostics)
        "int_util",   # max per-hop utilization stamped by INT ports
    )

    def __init__(
        self,
        kind: int,
        flow_id: int,
        src: int,
        dst: int,
        seq: int,
        size: int,
        sport: int = 0,
        dport: int = 0,
        payload: int = 0,
    ):
        self.kind = kind
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.sport = sport
        self.dport = dport
        self.seq = seq
        self.size = size
        self.payload = payload
        self.ecn = False
        self.sent_ps = 0
        self.echo_sent_ps = 0
        self.ecn_echo = False
        self.block_id: Optional[int] = None
        self.block_pos = 0
        self.nack_block: Optional[int] = None
        self.retx = 0
        self.hops = 0
        self.int_util = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{_KIND_NAMES.get(self.kind, '?')} flow={self.flow_id} "
            f"seq={self.seq} {self.src}->{self.dst} sport={self.sport} "
            f"size={self.size} ecn={self.ecn}>"
        )


def make_ack(data_pkt: Packet, now_ps: int) -> Packet:
    """Build the ACK for ``data_pkt`` (sent from its receiver back to src)."""
    ack = Packet(
        ACK,
        data_pkt.flow_id,
        src=data_pkt.dst,
        dst=data_pkt.src,
        seq=data_pkt.seq,
        size=ACK_SIZE,
        sport=data_pkt.dport,
        dport=data_pkt.sport,
        payload=data_pkt.payload,
    )
    ack.echo_sent_ps = data_pkt.sent_ps
    ack.ecn_echo = data_pkt.ecn
    ack.int_util = data_pkt.int_util  # echo the INT telemetry
    ack.block_id = data_pkt.block_id
    ack.block_pos = data_pkt.block_pos
    ack.sent_ps = now_ps
    return ack


def make_cnp(flow_id: int, switch_src: int, dst: int) -> Packet:
    """Build a QCN-style congestion notification from a switch back to the
    sender ``dst`` (Annulus extension; see repro.core.annulus)."""
    return Packet(CNP, flow_id, src=switch_src, dst=dst, seq=-1, size=ACK_SIZE)


def make_nack(flow_id: int, src: int, dst: int, block_id: int) -> Packet:
    """Build a NACK from the receiver (``src``) to the sender (``dst``)
    reporting that ``block_id`` cannot be recovered (UnoRC)."""
    nack = Packet(NACK, flow_id, src=src, dst=dst, seq=-1, size=ACK_SIZE)
    nack.nack_block = block_id
    return nack
